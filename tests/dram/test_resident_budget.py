"""Row-block LRU budget: eviction is bitwise-safe and metered.

Population generation is a pure function of (seed, row) counter streams,
so evicting a row and regenerating it on the next touch must reproduce
the exact same arrays — these tests drive budgeted maps through
arbitrary access orders and compare against an unbudgeted twin.
"""

import numpy as np
import pytest

from repro import obs
from repro.dram.disturb import DisturbMap, DisturbModelConfig
from repro.dram.faults import (
    RESIDENT_ROWS_GAUGE,
    ROWS_EVICTED_COUNTER,
    FaultMap,
    FaultModelConfig,
)

ROWS = 256
BITS = 4096
CFG = FaultModelConfig(vulnerable_cell_rate=5e-4)
DCFG = DisturbModelConfig(hammer_vulnerable_rate=5e-4)


def _pop_state(pop):
    return (
        pop.columns.tolist(),
        pop.thresholds.tolist(),
        pop.true_cell,
    )


def test_budget_rejects_nonpositive():
    with pytest.raises(ValueError):
        FaultMap(ROWS, BITS, CFG, seed=1, max_resident_rows=0)
    with pytest.raises(ValueError):
        DisturbMap(ROWS, BITS, DCFG, seed=1, max_resident_rows=-3)


def test_faultmap_eviction_respects_budget():
    fm = FaultMap(ROWS, BITS, CFG, seed=7, max_resident_rows=32)
    rng = np.random.default_rng(0)
    for _ in range(20):
        batch = rng.integers(0, ROWS, size=24)
        fm.rows_can_ever_fail(batch, 328.0)
        assert fm.resident_rows() <= 32
    # A batch wider than the budget must still evaluate (and stay whole
    # for the duration of the call), overshooting the budget only as far
    # as the batch itself.
    wide = np.arange(ROWS, dtype=np.int64)
    fm.rows_can_ever_fail(wide, 328.0)
    assert fm.resident_rows() == ROWS
    fm.rows_can_ever_fail(rng.integers(0, ROWS, size=8), 328.0)
    assert fm.resident_rows() <= 32


def test_faultmap_regeneration_is_bitwise_identical():
    reference = FaultMap(ROWS, BITS, CFG, seed=11)
    budgeted = FaultMap(ROWS, BITS, CFG, seed=11, max_resident_rows=16)
    rng = np.random.default_rng(1)
    content = rng.integers(0, 2, size=BITS, dtype=np.int64)
    for _ in range(30):
        batch = rng.integers(0, ROWS, size=rng.integers(1, 40))
        np.testing.assert_array_equal(
            budgeted.rows_fail(batch, content, 328.0),
            reference.rows_fail(batch, content, 328.0),
        )
        probe = int(batch[0])
        assert _pop_state(budgeted.row_population(probe)) == _pop_state(
            reference.row_population(probe)
        )


def test_disturbmap_regeneration_is_bitwise_identical():
    reference = DisturbMap(ROWS, BITS, DCFG, seed=13)
    budgeted = DisturbMap(ROWS, BITS, DCFG, seed=13, max_resident_rows=16)
    rng = np.random.default_rng(2)
    for _ in range(30):
        victims = np.unique(rng.integers(0, ROWS, size=rng.integers(1, 40)))
        pressures = rng.uniform(0.0, 200.0, size=len(victims))
        np.testing.assert_array_equal(
            budgeted.rows_flip(victims, pressures, 64.0),
            reference.rows_flip(victims, pressures, 64.0),
        )
        assert budgeted.resident_rows() <= max(16, len(victims))
        probe = int(victims[0])
        assert _pop_state(budgeted.row_population(probe)) == _pop_state(
            reference.row_population(probe)
        )


def test_cells_in_row_cache_evicts_in_lockstep():
    fm = FaultMap(ROWS, BITS, CFG, seed=3, max_resident_rows=4)
    for row in range(12):
        fm.cells_in_row(row)
    assert set(fm._rows) <= set(fm._populations)
    assert len(fm._rows) <= 4
    # Regenerated objects must carry identical values after eviction.
    again = FaultMap(ROWS, BITS, CFG, seed=3)
    assert fm.cells_in_row(0) == again.cells_in_row(0)


def test_resident_rows_gauge_and_eviction_counter():
    registry = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(registry)
    try:
        fm = FaultMap(ROWS, BITS, CFG, seed=5, max_resident_rows=8)
        dm = DisturbMap(ROWS, BITS, DCFG, seed=5, max_resident_rows=8)
        fm.rows_can_ever_fail(np.arange(24), 328.0)
        dm.rows_flip(np.arange(24), np.full(24, 10.0), 64.0)
        gauge = registry.gauge(RESIDENT_ROWS_GAUGE)
        assert gauge.value == fm.resident_rows() + dm.resident_rows()
        fm.rows_can_ever_fail(np.arange(24, 48), 328.0)
        assert registry.counter(ROWS_EVICTED_COUNTER).value > 0
        assert gauge.value == fm.resident_rows() + dm.resident_rows()
    finally:
        obs.set_registry(previous)


def test_unbudgeted_map_never_evicts():
    registry = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(registry)
    try:
        fm = FaultMap(ROWS, BITS, CFG, seed=9)
        fm.rows_can_ever_fail(np.arange(ROWS), 328.0)
        assert fm.resident_rows() == ROWS
        assert registry.counter(ROWS_EVICTED_COUNTER).value == 0
        assert registry.gauge(RESIDENT_ROWS_GAUGE).value == ROWS
    finally:
        obs.set_registry(previous)
