"""Tests for the data-dependent failure model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.faults import FaultMap, FaultModelConfig, VulnerableCell

NOMINAL_MS = 328.0


@pytest.fixture
def dense_map() -> FaultMap:
    return FaultMap(
        total_rows=64,
        bits_per_row=4096,
        config=FaultModelConfig(vulnerable_cell_rate=5e-3),
        seed=11,
    )


class TestPopulation:
    def test_deterministic_per_row(self, dense_map):
        assert dense_map.cells_in_row(3) == dense_map.cells_in_row(3)

    def test_same_seed_same_population(self):
        a = FaultMap(64, 4096, FaultModelConfig(vulnerable_cell_rate=5e-3), seed=2)
        b = FaultMap(64, 4096, FaultModelConfig(vulnerable_cell_rate=5e-3), seed=2)
        assert a.cells_in_row(10) == b.cells_in_row(10)

    def test_different_seed_differs(self):
        a = FaultMap(64, 4096, FaultModelConfig(vulnerable_cell_rate=5e-3), seed=2)
        b = FaultMap(64, 4096, FaultModelConfig(vulnerable_cell_rate=5e-3), seed=3)
        assert any(a.cells_in_row(r) != b.cells_in_row(r) for r in range(64))

    def test_cells_sorted_and_in_range(self, dense_map):
        for row in range(16):
            cells = dense_map.cells_in_row(row)
            columns = [c.physical_column for c in cells]
            assert columns == sorted(columns)
            assert all(0 <= c < 4096 for c in columns)

    def test_rate_scales_population(self):
        sparse = FaultMap(256, 4096,
                          FaultModelConfig(vulnerable_cell_rate=1e-5), seed=1)
        dense = FaultMap(256, 4096,
                         FaultModelConfig(vulnerable_cell_rate=5e-3), seed=1)
        n_sparse = sum(len(sparse.cells_in_row(r)) for r in range(256))
        n_dense = sum(len(dense.cells_in_row(r)) for r in range(256))
        assert n_dense > 10 * max(n_sparse, 1)

    def test_out_of_range_row_raises(self, dense_map):
        with pytest.raises(ValueError):
            dense_map.cells_in_row(64)


class TestStress:
    def test_monotonic_in_aggressors(self, dense_map):
        s0 = dense_map.stress(0, NOMINAL_MS)
        s1 = dense_map.stress(1, NOMINAL_MS)
        s2 = dense_map.stress(2, NOMINAL_MS)
        assert s0 < s1 < s2

    def test_monotonic_in_interval(self, dense_map):
        assert (
            dense_map.stress(2, 64.0)
            < dense_map.stress(2, NOMINAL_MS)
            < dense_map.stress(2, 1024.0)
        )

    def test_exponential_growth(self, dense_map):
        # Doubling the interval multiplies stress by 2**sensitivity.
        ratio = dense_map.stress(2, 656.0) / dense_map.stress(2, 328.0)
        assert ratio == pytest.approx(
            2 ** dense_map.config.interval_sensitivity, rel=1e-6
        )

    def test_invalid_aggressors_raises(self, dense_map):
        with pytest.raises(ValueError):
            dense_map.stress(3, NOMINAL_MS)


class TestCellFailure:
    def _make_cell(self, column: int, threshold: float, true_cell: bool):
        return VulnerableCell(
            row_index=0, physical_column=column,
            threshold=threshold, true_cell=true_cell,
        )

    def test_uncharged_cell_never_fails(self, dense_map):
        cell = self._make_cell(5, threshold=0.01, true_cell=True)
        bits = np.zeros(16, dtype=np.uint8)  # true-cell storing 0: no charge
        assert not dense_map.cell_fails(cell, bits, 10_000.0)

    def test_anti_cell_polarity(self, dense_map):
        cell = self._make_cell(5, threshold=0.5, true_cell=False)
        bits = np.ones(16, dtype=np.uint8)
        bits[5] = 0  # anti-cell storing 0 is charged; neighbours aggress
        assert dense_map.cell_fails(cell, bits, NOMINAL_MS)

    def test_no_aggressors_no_failure(self, dense_map):
        cell = self._make_cell(5, threshold=0.5, true_cell=True)
        bits = np.ones(16, dtype=np.uint8)  # charged, but neighbours match
        assert not dense_map.cell_fails(cell, bits, NOMINAL_MS)

    def test_two_aggressors_beats_threshold_at_nominal(self, dense_map):
        cell = self._make_cell(5, threshold=0.9, true_cell=True)
        bits = np.zeros(16, dtype=np.uint8)
        bits[5] = 1  # charged with both neighbours opposite
        assert dense_map.cell_fails(cell, bits, NOMINAL_MS)

    def test_short_interval_rescues_cell(self, dense_map):
        cell = self._make_cell(5, threshold=0.9, true_cell=True)
        bits = np.zeros(16, dtype=np.uint8)
        bits[5] = 1
        assert not dense_map.cell_fails(cell, bits, 64.0)

    def test_edge_cell_single_neighbour(self, dense_map):
        cell = self._make_cell(0, threshold=0.95, true_cell=True)
        bits = np.zeros(16, dtype=np.uint8)
        bits[0] = 1
        # Only one (right) neighbour can aggress: stress(1) < 0.95.
        assert not dense_map.cell_fails(cell, bits, NOMINAL_MS)

    def test_cell_past_row_width_ignored(self, dense_map):
        cell = self._make_cell(100, threshold=0.01, true_cell=True)
        bits = np.ones(16, dtype=np.uint8)
        assert not dense_map.cell_fails(cell, bits, NOMINAL_MS)


class TestRowQueries:
    def test_zero_content_never_fails_row(self, dense_map):
        bits = np.zeros(4096, dtype=np.uint8)
        for row in range(16):
            polarity = dense_map.row_is_true_cell(row)
            failures = dense_map.failing_cells(row, bits, NOMINAL_MS)
            if polarity:
                # True cells storing 0 hold no charge: nothing can fail.
                assert failures == []

    def test_failures_increase_with_interval(self, dense_map):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, 4096).astype(np.uint8)
        short = sum(
            len(dense_map.failing_cells(r, bits, 64.0)) for r in range(64)
        )
        long = sum(
            len(dense_map.failing_cells(r, bits, 2000.0)) for r in range(64)
        )
        assert long > short

    def test_failing_cells_subset_of_population(self, dense_map):
        rng = np.random.default_rng(6)
        bits = rng.integers(0, 2, 4096).astype(np.uint8)
        for row in range(16):
            failing = set(
                c.physical_column
                for c in dense_map.failing_cells(row, bits, NOMINAL_MS)
            )
            population = {
                c.physical_column for c in dense_map.cells_in_row(row)
            }
            assert failing <= population

    def test_all_fail_superset_of_any_content(self, dense_map):
        rng = np.random.default_rng(7)
        all_fail = set(dense_map.all_fail_rows(NOMINAL_MS))
        for _ in range(5):
            bits = rng.integers(0, 2, 4096).astype(np.uint8)
            content_rows = {
                r for r in range(64)
                if dense_map.failing_cells(r, bits, NOMINAL_MS)
            }
            assert content_rows <= all_fail

    @given(st.integers(min_value=0, max_value=2 ** 20))
    @settings(max_examples=20, deadline=None)
    def test_worst_case_consistency(self, content_seed):
        """row_can_ever_fail bounds failures under every random content."""
        fault_map = FaultMap(
            total_rows=8, bits_per_row=1024,
            config=FaultModelConfig(vulnerable_cell_rate=1e-2), seed=13,
        )
        rng = np.random.default_rng(content_seed)
        bits = rng.integers(0, 2, 1024).astype(np.uint8)
        for row in range(8):
            if fault_map.failing_cells(row, bits, NOMINAL_MS):
                assert fault_map.row_can_ever_fail(row, NOMINAL_MS)


class TestConfigValidation:
    @pytest.mark.parametrize("field,value", [
        ("vulnerable_cell_rate", -0.1),
        ("vulnerable_cell_rate", 1.5),
        ("true_cell_row_fraction", 2.0),
        ("single_aggressor_fraction", 0.0),
        ("single_aggressor_fraction", 1.5),
        ("baseline_stress", -1.0),
        ("nominal_interval_ms", 0.0),
        ("threshold_sigma", -0.5),
    ])
    def test_invalid_config_raises(self, field, value):
        with pytest.raises(ValueError):
            FaultModelConfig(**{field: value})
