"""Tests for DRAM geometry and the row address codec."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.geometry import (
    PAPER_MODULE,
    TINY_MODULE,
    DramGeometry,
    RowAddress,
)


class TestShape:
    def test_paper_module_capacity(self):
        # 8 banks x 32768 rows x 8 KB = 2 GB, the paper's test module.
        assert PAPER_MODULE.capacity_bytes == 2 * 1024 ** 3

    def test_paper_module_rows(self):
        assert PAPER_MODULE.total_rows == 262144

    def test_blocks_per_row(self):
        assert PAPER_MODULE.blocks_per_row == 128

    def test_bits_per_row(self):
        assert PAPER_MODULE.bits_per_row == 65536

    def test_row_size_must_be_block_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            DramGeometry(row_size_bytes=100, block_size_bytes=64)

    @pytest.mark.parametrize("field", [
        "channels", "ranks", "banks", "rows_per_bank",
        "row_size_bytes", "block_size_bytes",
    ])
    def test_non_positive_raises(self, field):
        with pytest.raises(ValueError, match=field):
            DramGeometry(**{field: 0})


class TestCodec:
    def test_roundtrip_first_row(self):
        addr = RowAddress(0, 0, 0, 0)
        assert TINY_MODULE.row_address(TINY_MODULE.row_index(addr)) == addr

    def test_roundtrip_last_row(self):
        geometry = TINY_MODULE
        addr = RowAddress(0, 0, geometry.banks - 1, geometry.rows_per_bank - 1)
        assert geometry.row_address(geometry.row_index(addr)) == addr

    @given(st.integers(min_value=0, max_value=TINY_MODULE.total_rows - 1))
    def test_roundtrip_property(self, index):
        assert TINY_MODULE.row_index(TINY_MODULE.row_address(index)) == index

    def test_index_is_dense_and_unique(self):
        indices = {TINY_MODULE.row_index(a) for a in TINY_MODULE.iter_rows()}
        assert indices == set(range(TINY_MODULE.total_rows))

    def test_out_of_range_index_raises(self):
        with pytest.raises(ValueError):
            TINY_MODULE.row_address(TINY_MODULE.total_rows)

    def test_out_of_range_bank_raises(self):
        with pytest.raises(ValueError, match="bank"):
            TINY_MODULE.row_index(RowAddress(0, 0, TINY_MODULE.banks, 0))

    def test_byte_to_row(self):
        assert TINY_MODULE.byte_to_row(0) == 0
        assert TINY_MODULE.byte_to_row(TINY_MODULE.row_size_bytes) == 1

    def test_byte_to_row_out_of_range(self):
        with pytest.raises(ValueError):
            TINY_MODULE.byte_to_row(TINY_MODULE.capacity_bytes)
