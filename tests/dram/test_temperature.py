"""Tests for the retention temperature model."""

import pytest

from repro.dram.temperature import (
    DEFAULT_TEMPERATURE_MODEL,
    REFERENCE_TEMPERATURE_C,
    RetentionTemperatureModel,
)


class TestScaling:
    def test_paper_conversion_exact(self):
        """4 s at 45C corresponds to 328 ms at 85C (paper §5)."""
        model = DEFAULT_TEMPERATURE_MODEL
        assert model.scale_interval(4000.0, 45.0, 85.0) == pytest.approx(
            328.0
        )

    def test_reference_helper(self):
        assert DEFAULT_TEMPERATURE_MODEL.equivalent_at_reference(
            4000.0, 45.0
        ) == pytest.approx(328.0)

    def test_identity_at_same_temperature(self):
        assert DEFAULT_TEMPERATURE_MODEL.scale_interval(
            100.0, 60.0, 60.0
        ) == pytest.approx(100.0)

    def test_roundtrip(self):
        model = DEFAULT_TEMPERATURE_MODEL
        scaled = model.scale_interval(64.0, 85.0, 45.0)
        assert model.scale_interval(scaled, 45.0, 85.0) == pytest.approx(64.0)

    def test_hotter_means_shorter(self):
        model = DEFAULT_TEMPERATURE_MODEL
        assert model.scale_interval(64.0, 45.0, 85.0) < 64.0
        assert model.scale_interval(64.0, 85.0, 45.0) > 64.0

    def test_doubling_definition(self):
        model = RetentionTemperatureModel(doubling_celsius=10.0)
        assert model.scale_interval(100.0, 50.0, 40.0) == pytest.approx(200.0)

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_TEMPERATURE_MODEL.scale_interval(0.0, 45.0, 85.0)

    def test_invalid_doubling_raises(self):
        with pytest.raises(ValueError):
            RetentionTemperatureModel(doubling_celsius=0.0)


class TestGuardband:
    def test_guardband_covers_target(self):
        model = DEFAULT_TEMPERATURE_MODEL
        # Test at a cool 45C for 64 ms operation at 85C with 2x margin.
        test_interval = model.guardbanded_test_interval(
            target_interval_ms=64.0, target_celsius=85.0,
            test_celsius=45.0, guardband=2.0,
        )
        # The test interval, expressed at 85C, is twice the target.
        at_target = model.scale_interval(test_interval, 45.0, 85.0)
        assert at_target == pytest.approx(128.0)

    def test_larger_guardband_longer_test(self):
        model = DEFAULT_TEMPERATURE_MODEL
        small = model.guardbanded_test_interval(64.0, 85.0, 45.0, 1.5)
        large = model.guardbanded_test_interval(64.0, 85.0, 45.0, 3.0)
        assert large > small

    def test_guardband_below_one_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_TEMPERATURE_MODEL.guardbanded_test_interval(
                64.0, 85.0, 45.0, guardband=0.5,
            )

    def test_reference_constant(self):
        assert REFERENCE_TEMPERATURE_C == 85.0
