"""Tests for the cell-level content model."""

import numpy as np
import pytest

from repro.dram.cell_array import CellArray, bits_to_bytes, bytes_to_bits
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.dram.geometry import TINY_MODULE, DramGeometry


@pytest.fixture
def array() -> CellArray:
    return CellArray(TINY_MODULE, seed=3)


@pytest.fixture
def dense_array() -> CellArray:
    geometry = DramGeometry(
        channels=1, ranks=1, banks=2, rows_per_bank=32,
        row_size_bytes=512, block_size_bytes=64,
    )
    array = CellArray(geometry, seed=5)
    array.fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=array.vendor_mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=5e-3),
        seed=5,
    )
    return array


class TestBitCodec:
    def test_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_lsb_first(self):
        bits = bytes_to_bits(b"\x01")
        assert list(bits) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_non_multiple_of_8_raises(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.zeros(7, dtype=np.uint8))


class TestContent:
    def test_unwritten_row_reads_zero(self, array):
        assert array.read_row_bytes(0) == bytes(TINY_MODULE.row_size_bytes)

    def test_write_read_roundtrip(self, array):
        data = bytes(
            (i * 37) % 256 for i in range(TINY_MODULE.row_size_bytes)
        )
        array.write_row_bytes(5, data)
        assert array.read_row_bytes(5) == data

    def test_block_write_updates_slice(self, array):
        block = bytes([0xAB] * TINY_MODULE.block_size_bytes)
        array.write_block(2, 3, block)
        row = array.read_row_bytes(2)
        start = 3 * TINY_MODULE.block_size_bytes
        assert row[start:start + 64] == block
        assert row[:start] == bytes(start)

    def test_block_write_preserves_rest_of_row(self, array):
        data = bytes([0x11] * TINY_MODULE.row_size_bytes)
        array.write_row_bytes(1, data)
        array.write_block(1, 0, bytes([0x22] * 64))
        row = array.read_row_bytes(1)
        assert row[:64] == bytes([0x22] * 64)
        assert row[64:] == data[64:]

    def test_written_rows_tracked(self, array):
        array.write_block(4, 0, bytes(64))
        array.write_row_bytes(9, bytes(TINY_MODULE.row_size_bytes))
        assert array.written_rows() == [4, 9]

    def test_read_returns_copy(self, array):
        bits = array.read_row_bits(0)
        bits[:] = 1
        assert array.read_row_bits(0).sum() == 0

    def test_wrong_size_raises(self, array):
        with pytest.raises(ValueError):
            array.write_row_bytes(0, b"short")
        with pytest.raises(ValueError):
            array.write_block(0, 0, b"short")

    def test_out_of_range_raises(self, array):
        with pytest.raises(ValueError):
            array.read_row_bits(TINY_MODULE.total_rows)
        with pytest.raises(ValueError, match="block"):
            array.write_block(0, TINY_MODULE.blocks_per_row, bytes(64))


class TestSiliconView:
    def test_silicon_roundtrips_to_system(self, array):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, TINY_MODULE.bits_per_row).astype(np.uint8)
        array.write_row_bits(7, bits)
        physical = array.silicon_row(7)
        recovered = array.vendor_mapping.from_silicon(physical)
        assert np.array_equal(recovered, bits)

    def test_silicon_differs_from_system_order(self, array):
        bits = np.zeros(TINY_MODULE.bits_per_row, dtype=np.uint8)
        bits[:16] = 1  # a contiguous run in system order
        array.write_row_bits(0, bits)
        physical = array.silicon_row(0)
        # Scrambling must scatter the run (overwhelmingly likely).
        assert not np.array_equal(physical[: len(bits)], bits)


class TestDecay:
    def test_decay_flips_failing_cells_only(self, dense_array):
        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2, 4096).astype(np.uint8)
        dense_array.write_row_bits(3, bits)
        failing = dense_array.failing_cells(3, 1000.0)
        decayed = dense_array.decay_row(3, 1000.0)
        assert int((decayed != bits).sum()) == len(failing)

    def test_no_failures_no_change(self, dense_array):
        bits = np.zeros(4096, dtype=np.uint8)
        dense_array.write_row_bits(3, bits)
        if not dense_array.failing_cells(3, 64.0):
            decayed = dense_array.decay_row(3, 64.0)
            assert np.array_equal(decayed, bits)

    def test_row_fails_consistent_with_failing_cells(self, dense_array):
        rng = np.random.default_rng(10)
        bits = rng.integers(0, 2, 4096).astype(np.uint8)
        for row in range(8):
            dense_array.write_row_bits(row, bits)
            assert dense_array.row_fails(row, 1000.0) == bool(
                dense_array.failing_cells(row, 1000.0)
            )

    def test_decay_deterministic(self, dense_array):
        rng = np.random.default_rng(11)
        bits = rng.integers(0, 2, 4096).astype(np.uint8)
        dense_array.write_row_bits(1, bits)
        first = dense_array.decay_row(1, 500.0)
        second = dense_array.decay_row(1, 500.0)
        assert np.array_equal(first, second)


class TestEvaluateRows:
    def test_matches_per_row_scalar_path(self, dense_array):
        rng = np.random.default_rng(12)
        total = dense_array.geometry.total_rows
        for row in range(0, total, 3):
            dense_array.write_row_bits(
                row, rng.integers(0, 2, 4096).astype(np.uint8)
            )
        batch = dense_array.evaluate_rows(None, 1000.0)
        assert batch.shape == (total,)
        for row in range(total):
            assert batch[row] == dense_array.row_fails(row, 1000.0)

    def test_row_subset_and_chunking(self, dense_array):
        rng = np.random.default_rng(13)
        rows = [1, 5, 17, 40]
        for row in rows:
            dense_array.write_row_bits(
                row, rng.integers(0, 2, 4096).astype(np.uint8)
            )
        batch = dense_array.evaluate_rows(rows, 800.0, chunk_rows=2)
        assert batch.shape == (len(rows),)
        for pos, row in enumerate(rows):
            assert batch[pos] == dense_array.row_fails(row, 800.0)

    def test_unwritten_rows_share_zero_image(self, dense_array):
        # No row written: every row holds the zero pattern, so the batch
        # must agree with the scalar path on the all-zeros content.
        batch = dense_array.evaluate_rows(None, 1000.0)
        for row in range(dense_array.geometry.total_rows):
            assert batch[row] == dense_array.row_fails(row, 1000.0)
