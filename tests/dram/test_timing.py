"""Tests for DDR3 timing parameters and derived costs."""

import pytest

from repro.dram.timing import (
    DDR3_1600,
    ROWS_PER_REFRESH_WINDOW,
    TimingParameters,
    trefi_for_refresh_interval_ns,
    trfc_for_density_ns,
)


class TestDerivedCosts:
    """The paper's Appendix arithmetic must hold exactly."""

    def test_row_read_cost(self):
        assert DDR3_1600.row_read_ns == 534.0

    def test_read_and_compare_cost(self):
        assert DDR3_1600.read_and_compare_ns == 1068.0

    def test_copy_and_compare_cost(self):
        assert DDR3_1600.copy_and_compare_ns == 1602.0

    def test_refresh_cost(self):
        assert DDR3_1600.row_refresh_ns == 39.0

    def test_row_write_equals_row_read(self):
        assert DDR3_1600.row_write_ns == DDR3_1600.row_read_ns

    def test_cost_scales_with_blocks(self):
        timing = TimingParameters(blocks_per_row=256)
        assert timing.row_read_ns == 11.0 + 256 * 4.0 + 11.0


class TestCycles:
    def test_exact_multiple(self):
        assert DDR3_1600.cycles(12.5) == 10

    def test_rounds_up(self):
        assert DDR3_1600.cycles(12.6) == 11

    def test_zero(self):
        assert DDR3_1600.cycles(0.0) == 0


class TestDensityScaling:
    @pytest.mark.parametrize("density,trfc", [(8, 350.0), (16, 530.0),
                                              (32, 890.0), (64, 1600.0)])
    def test_trfc_for_density(self, density, trfc):
        assert trfc_for_density_ns(density) == trfc

    def test_with_density_returns_new_instance(self):
        scaled = DDR3_1600.with_density(32)
        assert scaled.tRFC == 890.0
        assert DDR3_1600.tRFC == 350.0

    def test_unknown_density_raises(self):
        with pytest.raises(ValueError, match="unsupported chip density"):
            trfc_for_density_ns(12)


class TestTrefi:
    def test_16ms_matches_table2(self):
        assert trefi_for_refresh_interval_ns(16.0) == pytest.approx(1953.125)

    def test_64ms_matches_table2(self):
        assert trefi_for_refresh_interval_ns(64.0) == pytest.approx(7812.5)

    def test_rows_per_window(self):
        assert ROWS_PER_REFRESH_WINDOW == 8192

    def test_non_positive_interval_raises(self):
        with pytest.raises(ValueError):
            trefi_for_refresh_interval_ns(0.0)


class TestValidation:
    @pytest.mark.parametrize("field", ["tRCD", "tRP", "tRAS", "tCCD", "tRFC"])
    def test_non_positive_timing_raises(self, field):
        with pytest.raises(ValueError, match=field):
            TimingParameters(**{field: 0.0})

    def test_non_positive_blocks_raises(self):
        with pytest.raises(ValueError, match="blocks_per_row"):
            TimingParameters(blocks_per_row=0)
