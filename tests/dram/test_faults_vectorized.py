"""Equivalence tests: the vectorised fault engine vs the scalar oracle.

The batch APIs (``failing_mask``, ``rows_fail``, ``failing_cells_batch``,
``rows_can_ever_fail``) must agree cell-for-cell with the legacy per-cell
path (``cell_fails`` / ``row_can_ever_fail``), which is kept as the
reference implementation. Also covers the RNG-stream regression: row
polarity must be drawn independently of the cell layout.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.faults import FaultMap, FaultModelConfig

# Dense enough that a 64-row slice holds many vulnerable cells.
DENSE = FaultModelConfig(vulnerable_cell_rate=5e-3)


def _map(seed: int, rows: int = 64, bits: int = 256) -> FaultMap:
    return FaultMap(total_rows=rows, bits_per_row=bits, config=DENSE, seed=seed)


def _oracle_mask(fault_map, row, bits, interval):
    return np.array(
        [fault_map.cell_fails(c, bits, interval)
         for c in fault_map.cells_in_row(row)],
        dtype=bool,
    )


class TestMaskMatchesOracle:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        content_seed=st.integers(0, 2**32 - 1),
        interval=st.sampled_from([64.0, 328.0, 1024.0, 4096.0]),
    )
    def test_failing_mask_equals_per_cell_loop(
        self, seed, content_seed, interval
    ):
        fault_map = _map(seed)
        rng = np.random.default_rng(content_seed)
        bits = rng.integers(0, 2, size=256, dtype=np.uint8)
        for row in range(0, 64, 7):
            expected = _oracle_mask(fault_map, row, bits, interval)
            got = fault_map.failing_mask(row, bits, interval)
            assert got.dtype == np.bool_
            np.testing.assert_array_equal(got, expected)

    def test_mask_against_structured_contents(self):
        fault_map = _map(seed=11)
        patterns = [
            np.zeros(256, dtype=np.uint8),
            np.ones(256, dtype=np.uint8),
            np.tile([0, 1], 128).astype(np.uint8),
            np.tile([1, 0], 128).astype(np.uint8),
        ]
        for bits in patterns:
            for row in range(64):
                np.testing.assert_array_equal(
                    fault_map.failing_mask(row, bits, 328.0),
                    _oracle_mask(fault_map, row, bits, 328.0),
                )

    def test_failing_cells_wrapper_selects_masked_cells(self):
        fault_map = _map(seed=3)
        bits = np.ones(256, dtype=np.uint8)
        for row in range(64):
            cells = fault_map.cells_in_row(row)
            mask = fault_map.failing_mask(row, bits, 2048.0)
            assert fault_map.failing_cells(row, bits, 2048.0) == [
                c for c, m in zip(cells, mask) if m
            ]


class TestBatchRowEvaluation:
    def test_rows_fail_matches_per_row_shared_bits(self):
        fault_map = _map(seed=5)
        bits = np.tile([1, 1, 0, 0], 64).astype(np.uint8)
        rows = np.arange(64)
        batch = fault_map.rows_fail(rows, bits, 328.0)
        for row in rows:
            assert batch[row] == bool(
                _oracle_mask(fault_map, int(row), bits, 328.0).any()
            )

    def test_rows_fail_matches_per_row_matrix_bits(self):
        fault_map = _map(seed=6)
        rng = np.random.default_rng(0)
        rows = np.arange(0, 64, 3)
        matrix = rng.integers(0, 2, size=(len(rows), 256), dtype=np.uint8)
        batch = fault_map.rows_fail(rows, matrix, 500.0)
        for pos, row in enumerate(rows):
            assert batch[pos] == bool(
                _oracle_mask(fault_map, int(row), matrix[pos], 500.0).any()
            )

    def test_failing_cells_batch_matches_per_row(self):
        fault_map = _map(seed=7)
        bits = np.ones(256, dtype=np.uint8)
        rows = np.arange(64)
        got_rows, got_cols = fault_map.failing_cells_batch(rows, bits, 1024.0)
        expected = [
            (int(row), cell.physical_column)
            for row in rows
            for cell in fault_map.failing_cells(int(row), bits, 1024.0)
        ]
        assert sorted(zip(got_rows.tolist(), got_cols.tolist())) == sorted(expected)


class TestWorstCase:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        interval=st.sampled_from([128.0, 328.0, 1024.0]),
    )
    def test_rows_can_ever_fail_matches_legacy_scan(self, seed, interval):
        fault_map = _map(seed)
        rows = np.arange(64)
        expected = [fault_map.row_can_ever_fail(int(r), interval) for r in rows]
        got = fault_map.rows_can_ever_fail(rows, interval)
        assert got.tolist() == expected

    def test_all_fail_rows_equals_legacy_scan(self):
        fault_map = _map(seed=9, rows=128)
        legacy = [
            row for row in range(128)
            if fault_map.row_can_ever_fail(row, 328.0)
        ]
        assert fault_map.all_fail_rows(328.0) == legacy

    def test_rows_validation(self):
        fault_map = _map(seed=1)
        with pytest.raises(ValueError):
            fault_map.rows_can_ever_fail(np.array([64]), 328.0)
        with pytest.raises(ValueError):
            fault_map.rows_fail(
                np.array([-1]), np.zeros(256, dtype=np.uint8), 328.0
            )


class TestRngStreamIndependence:
    """Regression: polarity must not depend on the cell-layout draws.

    The old generator drew polarity from the same sequential stream as the
    cell count and columns, so changing the vulnerable-cell rate (or the
    number of cells a row happened to get) changed which rows were
    true-cell rows. Each draw kind now has a dedicated counter sub-stream.
    """

    def test_polarity_unchanged_by_cell_density(self):
        sparse = FaultMap(
            total_rows=256, bits_per_row=256,
            config=FaultModelConfig(vulnerable_cell_rate=1e-4), seed=42,
        )
        dense = FaultMap(
            total_rows=256, bits_per_row=256,
            config=FaultModelConfig(vulnerable_cell_rate=2e-2), seed=42,
        )
        assert any(
            len(sparse.cells_in_row(r)) != len(dense.cells_in_row(r))
            for r in range(256)
        )
        for row in range(256):
            assert sparse.row_is_true_cell(row) == dense.row_is_true_cell(row)

    def test_polarity_uncorrelated_with_cell_count(self):
        fault_map = FaultMap(
            total_rows=4096, bits_per_row=128,
            config=FaultModelConfig(
                vulnerable_cell_rate=2e-2, true_cell_row_fraction=0.5
            ),
            seed=17,
        )
        polarity = np.array(
            [fault_map.row_is_true_cell(r) for r in range(4096)], dtype=float
        )
        counts = np.array(
            [len(fault_map.cells_in_row(r)) for r in range(4096)], dtype=float
        )
        assert abs(polarity.mean() - 0.5) < 0.05
        # With the old correlated streams this correlation was strong.
        corr = np.corrcoef(polarity, counts)[0, 1]
        assert abs(corr) < 0.06

    def test_generation_is_batch_composition_independent(self):
        one_at_a_time = _map(seed=23)
        all_at_once = _map(seed=23)
        for row in range(64):
            one_at_a_time.cells_in_row(row)  # generates rows singly
        all_at_once.rows_can_ever_fail(np.arange(64), 328.0)  # batch
        for row in range(64):
            assert (
                one_at_a_time.cells_in_row(row)
                == all_at_once.cells_in_row(row)
            )
