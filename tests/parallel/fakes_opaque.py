"""Hook-less experiment module: exercises the opaque-unit fallback."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="opaque", title="opaque", paper_claim="none"
    )
    result.add_row(seed=seed, quick=bool(quick))
    result.notes = "rendered by run()"
    return result
