"""Checkpoint journal semantics and end-to-end kill-and-resume."""

import json

import pytest

from repro.experiments.runner import main
from repro.obs import load_manifest
from repro.parallel.checkpoint import JOURNAL_VERSION, CheckpointJournal


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append("fig06:u0", "fp0", {"x": 1.5}, wall_s=0.1, worker=9)
            journal.append("fig06:u1", "fp1", [1, 2, 3])
        entries = CheckpointJournal(path).load()
        assert entries["fig06:u0"]["payload"] == {"x": 1.5}
        assert entries["fig06:u0"]["fp"] == "fp0"
        assert entries["fig06:u0"]["worker"] == 9
        assert entries["fig06:u1"]["payload"] == [1, 2, 3]

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointJournal(str(tmp_path / "nope.jsonl")).load() == {}

    def test_truncated_tail_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointJournal(str(path)) as journal:
            journal.append("a", "fp", 1)
            journal.append("b", "fp", 2)
        content = path.read_text()
        path.write_text(content[: len(content) - 5])  # kill mid-line
        entries = CheckpointJournal(str(path)).load()
        assert set(entries) == {"a"}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = json.dumps({"v": JOURNAL_VERSION, "key": "a", "fp": "f",
                           "payload": 1})
        path.write_text(f"not json\n{good}\n")
        with pytest.raises(ValueError, match="corrupt"):
            CheckpointJournal(str(path)).load()

    def test_unknown_version_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            json.dumps({"v": 99, "key": "future", "fp": "f", "payload": 0}),
            json.dumps({"v": JOURNAL_VERSION, "key": "a", "fp": "f",
                        "payload": 1}),
        ]
        path.write_text("\n".join(lines) + "\n")
        assert set(CheckpointJournal(str(path)).load()) == {"a"}

    def test_last_write_wins(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append("a", "fp", "old")
            journal.append("a", "fp", "new")
        assert CheckpointJournal(path).load()["a"]["payload"] == "new"

    def test_load_by_fingerprint_keeps_same_key_variants(self, tmp_path):
        # One key under two fingerprints (a persistent service running
        # the same experiment for two seeds): load() collapses them,
        # load_by_fingerprint() keeps both.
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append("fig04:scan00", "fp-seed1", {"s": 1})
            journal.append("fig04:scan00", "fp-seed2", {"s": 2})
        journal = CheckpointJournal(path)
        assert journal.load()["fig04:scan00"]["payload"] == {"s": 2}
        by_fp = journal.load_by_fingerprint()
        assert by_fp[("fig04:scan00", "fp-seed1")]["payload"] == {"s": 1}
        assert by_fp[("fig04:scan00", "fp-seed2")]["payload"] == {"s": 2}

    def test_parent_directories_created(self, tmp_path):
        path = str(tmp_path / "deep" / "nest" / "j.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append("a", "fp", 1)
        assert CheckpointJournal(path).load()["a"]["payload"] == 1


class TestKillAndResume:
    def _workers_stats(self, manifest_path):
        return load_manifest(str(manifest_path))["workers"]["stats"]

    def test_killed_run_resumes_without_reexecuting(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        manifest = tmp_path / "run.json"
        checkpoint = tmp_path / "r.checkpoint.jsonl"
        assert main(["fig06", "--jobs", "2", "--out", str(out),
                     "--manifest", str(manifest)]) == 0
        reference = out.read_text()
        journal_lines = checkpoint.read_text().splitlines()
        assert len(journal_lines) == 4  # fig06 decomposes into 4 units
        assert self._workers_stats(manifest)["executed"] == 4

        # Simulate a kill after two units: truncate the journal, resume.
        checkpoint.write_text("\n".join(journal_lines[:2]) + "\n")
        assert main(["fig06", "--jobs", "2", "--out", str(out),
                     "--manifest", str(manifest), "--resume"]) == 0
        stats = self._workers_stats(manifest)
        assert stats["skipped"] == 2
        assert stats["executed"] == 2  # only the missing units ran
        assert out.read_text() == reference

        # Journal keys stay unique per unit: no duplicate entries appended.
        keys = [json.loads(line)["key"]
                for line in checkpoint.read_text().splitlines()]
        assert len(keys) == len(set(keys)) == 4

        # A second resume finds everything journalled: zero re-executed.
        assert main(["fig06", "--jobs", "2", "--out", str(out),
                     "--manifest", str(manifest), "--resume"]) == 0
        stats = self._workers_stats(manifest)
        assert stats["executed"] == 0
        assert stats["skipped"] == 4
        assert out.read_text() == reference

    def test_resume_ignores_other_seed_journal(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        manifest = tmp_path / "run.json"
        assert main(["fig06", "--jobs", "2", "--out", str(out),
                     "--manifest", str(manifest)]) == 0
        # Same journal, different seed: fingerprints mismatch everywhere.
        assert main(["fig06", "--jobs", "2", "--out", str(out),
                     "--manifest", str(manifest), "--resume",
                     "--seed", "2"]) == 0
        stats = self._workers_stats(manifest)
        assert stats["skipped"] == 0
        assert stats["executed"] == 4

    def test_explicit_checkpoint_path(self, tmp_path, capsys):
        checkpoint = tmp_path / "elsewhere" / "ckpt.jsonl"
        assert main(["fig06", "--jobs", "2",
                     "--checkpoint", str(checkpoint)]) == 0
        assert checkpoint.exists()
        assert len(checkpoint.read_text().splitlines()) == 4

    def test_serial_resume_shares_the_journal(self, tmp_path, capsys):
        # A journal written at --jobs 2 resumes cleanly at --jobs 1.
        out = tmp_path / "r.md"
        manifest = tmp_path / "run.json"
        assert main(["fig06", "--jobs", "2", "--out", str(out),
                     "--manifest", str(manifest)]) == 0
        reference = out.read_text()
        assert main(["fig06", "--jobs", "1", "--out", str(out),
                     "--manifest", str(manifest), "--resume"]) == 0
        stats = self._workers_stats(manifest)
        assert stats["executed"] == 0
        assert stats["skipped"] == 4
        assert out.read_text() == reference
