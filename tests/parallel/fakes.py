"""Synthetic experiment modules for exercising the parallel machinery.

``fake`` implements the full hook contract with failure modes steerable
through unit params (raise, crash, or sleep — but only outside a named
"home" pid, so the parent's serial-degrade path always succeeds).
``opaque`` has no hooks at all and exercises the single-unit fallback.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List

from repro.experiments.common import ExperimentResult
from repro.parallel.units import WorkUnit

N_UNITS = 4


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    return [
        WorkUnit("fake", f"u{i}", {"value": i * 10 + seed}, seq=i)
        for i in range(N_UNITS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    params = unit.params
    away_from_home = os.getpid() != params.get("home_pid")
    if params.get("raise_away") and away_from_home:
        raise RuntimeError(f"synthetic failure in {unit.unit_id}")
    if params.get("crash_away") and away_from_home:
        os._exit(17)
    if params.get("sleep_away") and away_from_home:
        time.sleep(params["sleep_away"])
    return {"value": params["value"], "squared": params["value"] ** 2}


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fake", title="fake", paper_claim="none"
    )
    for payload in payloads:
        result.add_row(value=payload["value"], squared=payload["squared"])
    return result
