"""Observability merge: registry fold, k-way trace merge, block splicing."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    MetricsRegistry,
    aggregate_trace,
    read_trace,
)
from repro.parallel.merge import (
    discover_metric_shards,
    discover_trace_shards,
    merge_metric_snapshots,
    merge_run_traces,
)


class TestRegistryMerge:
    def _registry(self, counter=0, gauge=0.0, hist=()):
        registry = MetricsRegistry(enabled=True)
        registry.counter("n").inc(counter)
        registry.gauge("g").set(gauge)
        h = registry.histogram("h", (1.0, 10.0))
        for value in hist:
            h.observe(value)
        return registry

    def test_counters_sum(self):
        a, b = self._registry(counter=3), self._registry(counter=4)
        a.merge(b)
        assert a.counter("n").value == 7

    def test_gauges_keep_high_water_mark(self):
        a, b = self._registry(gauge=5.0), self._registry(gauge=3.0)
        a.merge(b)
        assert a.gauge("g").value == 5.0
        b.merge(self._registry(gauge=9.0))
        assert b.gauge("g").value == 9.0

    def test_histograms_add_bucketwise(self):
        a = self._registry(hist=(0.5, 5.0))
        b = self._registry(hist=(5.0, 50.0))
        a.merge(b)
        snap = a.snapshot()["histograms"]["h"]
        assert snap["counts"] == [1, 2, 1]
        assert snap["total"] == 4

    def test_merge_accepts_snapshot_dicts(self):
        a = self._registry(counter=1)
        a.merge(self._registry(counter=2).snapshot())
        assert a.counter("n").value == 3

    def test_bounds_mismatch_raises(self):
        a = self._registry(hist=(0.5,))
        b = MetricsRegistry(enabled=True)
        b.histogram("h", (2.0, 20.0)).observe(1.0)
        with pytest.raises(ValueError, match="buckets|bounds"):
            a.merge(b)

    def test_non_mapping_rejected(self):
        with pytest.raises(TypeError):
            MetricsRegistry(enabled=True).merge([1, 2])

    def test_merge_metric_snapshots_folds_shard_files(self, tmp_path):
        base = self._registry(counter=1, gauge=2.0).snapshot()
        for i, count in enumerate((10, 100)):
            shard = tmp_path / f"m.worker-g1-{i}.json"
            shard.write_text(json.dumps(
                self._registry(counter=count, gauge=float(i)).snapshot()
            ))
        (tmp_path / "m.worker-g1-bad.json").write_text("{trunca")
        shards = discover_metric_shards(str(tmp_path / "m.json"))
        assert len(shards) == 3  # the corrupt one is found but skipped
        merged = merge_metric_snapshots(base, shards)
        assert merged["counters"]["n"] == 111
        assert merged["gauges"]["g"] == 2.0


def _rec(kind, **fields):
    return {"v": SCHEMA_VERSION, "kind": kind, **fields}


def _write(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return str(path)


class TestReadTraceMerge:
    def test_merges_shards_in_time_order(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", [
            _rec("test_started", t_ms=1.0, page=1),
            _rec("test_started", t_ms=5.0, page=2),
        ])
        b = _write(tmp_path / "b.jsonl", [
            _rec("test_started", t_ms=2.0, page=3),
            _rec("test_started", t_ms=9.0, page=4),
        ])
        pages = [r["page"] for r in read_trace(merge=[a, b])]
        assert pages == [1, 3, 2, 4]

    def test_untimed_records_ride_their_shard_clock(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", [
            _rec("test_started", t_ms=1.0, page=1),
            _rec("pril_quantum", quantum=1, predicted=0, buffer=0),
            _rec("test_started", t_ms=8.0, page=2),
        ])
        b = _write(tmp_path / "b.jsonl", [
            _rec("test_started", t_ms=4.0, page=3),
        ])
        kinds = [(r["kind"], r.get("page")) for r in read_trace(merge=[a, b])]
        # The untimed record stays glued after its t=1 predecessor.
        assert kinds == [
            ("test_started", 1), ("pril_quantum", None),
            ("test_started", 3), ("test_started", 2),
        ]

    def test_tolerates_truncated_shard_tails(self, tmp_path):
        a = tmp_path / "a.jsonl"
        _write(a, [_rec("test_started", t_ms=1.0, page=1)])
        with open(a, "a") as handle:
            handle.write('{"v": 1, "kind": "test_st')  # killed mid-write
        b = _write(tmp_path / "b.jsonl", [
            _rec("test_started", t_ms=2.0, page=2),
        ])
        pages = [r["page"] for r in read_trace(merge=[str(a), b])]
        assert pages == [1, 2]

    def test_merged_rollups_match_the_unsharded_stream(self, tmp_path):
        records = [
            _rec("test_started", t_ms=float(i), page=i % 7) for i in range(60)
        ]
        shards = [
            _write(tmp_path / f"s{k}.jsonl", records[k::3]) for k in range(3)
        ]
        whole = _write(tmp_path / "whole.jsonl", records)
        assert aggregate_trace(read_trace(merge=shards), window_ms=16.0) == \
            aggregate_trace(read_trace(whole), window_ms=16.0)

    def test_path_and_merge_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            list(read_trace("x.jsonl", merge=["y.jsonl"]))
        with pytest.raises(ValueError):
            list(read_trace())


class TestMergeRunTraces:
    def _unit_block(self, experiment, seq, attempt, pages):
        records = [_rec("unit_started", experiment=experiment,
                        unit=f"u{seq}", seq=seq, attempt=attempt)]
        records += [_rec("test_started", t_ms=0.0, page=p) for p in pages]
        records.append(_rec("unit_finished", experiment=experiment,
                            unit=f"u{seq}", seq=seq, attempt=attempt,
                            wall_s=0.0))
        return records

    def test_blocks_splice_in_seq_order_after_anchor(self, tmp_path):
        parent = _write(tmp_path / "t.parent.jsonl", [
            _rec("run_started", experiments=["e"], seed=1, quick=True),
            _rec("experiment_started", experiment="e"),
            _rec("experiment_finished", experiment="e", wall_s=0.0),
            _rec("run_finished", wall_s=0.0),
        ])
        _write(tmp_path / "t.worker-g1-1.jsonl",
               self._unit_block("e", 1, 2, [10, 11]))
        _write(tmp_path / "t.worker-g1-2.jsonl",
               self._unit_block("e", 0, 1, [20]))
        out = str(tmp_path / "t.jsonl")
        shards = discover_trace_shards(out)
        assert len(shards) == 2
        count = merge_run_traces(parent, shards, out)
        merged = list(read_trace(out, validate=False))
        assert count == len(merged) == 7
        kinds = [r["kind"] for r in merged]
        assert "unit_started" not in kinds and "unit_finished" not in kinds
        pages = [r.get("page") for r in merged]
        # seq 0's block (page 20) splices before seq 1's (pages 10, 11).
        assert pages == [None, None, 20, 10, 11, None, None]

    def test_accepted_attempt_beats_impostor_blocks(self, tmp_path):
        parent = _write(tmp_path / "t.parent.jsonl", [
            _rec("experiment_started", experiment="e"),
        ])
        _write(tmp_path / "t.worker-g1-1.jsonl",
               self._unit_block("e", 0, 1, [111]))  # failed first attempt
        _write(tmp_path / "t.worker-g1-2.jsonl",
               self._unit_block("e", 0, 2, [222]))  # accepted retry
        out = str(tmp_path / "t.jsonl")
        merge_run_traces(
            parent, discover_trace_shards(out), out,
            accepted={("e", 0): ("worker-g1-2", 2)},
        )
        pages = [r.get("page") for r in read_trace(out, validate=False)]
        assert pages == [None, 222]

    def test_orphan_blocks_append_after_skeleton(self, tmp_path):
        # A killed run: the worker finished a unit whose experiment
        # anchor never reached the parent shard.
        parent = _write(tmp_path / "t.parent.jsonl", [
            _rec("run_started", experiments=["e"], seed=1, quick=True),
        ])
        _write(tmp_path / "t.worker-g1-1.jsonl",
               self._unit_block("orphan", 0, 1, [5]))
        out = str(tmp_path / "t.jsonl")
        merge_run_traces(parent, discover_trace_shards(out), out)
        merged = list(read_trace(out, validate=False))
        assert [r["kind"] for r in merged] == ["run_started", "test_started"]

    def test_partial_block_from_killed_worker_is_kept(self, tmp_path):
        parent = _write(tmp_path / "t.parent.jsonl", [
            _rec("experiment_started", experiment="e"),
        ])
        records = self._unit_block("e", 0, 1, [7, 8])[:-1]  # no finish
        _write(tmp_path / "t.worker-g1-1.jsonl", records)
        out = str(tmp_path / "t.jsonl")
        merge_run_traces(parent, discover_trace_shards(out), out)
        pages = [r.get("page") for r in read_trace(out, validate=False)]
        assert pages == [None, 7, 8]


class TestIterMergedRecords:
    """The streaming form: identical order to the written merge, and the
    ledger extractor can consume shards without a merged file."""

    def _shard_set(self, tmp_path):
        parent = _write(tmp_path / "t.parent.jsonl", [
            _rec("run_started", experiments=["e"], seed=1, quick=True),
            _rec("experiment_started", experiment="e"),
            _rec("experiment_finished", experiment="e", wall_s=0.0),
            _rec("run_finished", wall_s=0.0),
        ])
        block = [
            _rec("unit_started", experiment="e", unit="u0", seq=0,
                 attempt=1),
            _rec("pril_grant", page=4, quantum=0),
            _rec("test_started", t_ms=0.0, page=4),
            _rec("forensic_row", row=4, verdict="composed"),
            _rec("unit_finished", experiment="e", unit="u0", seq=0,
                 attempt=1, wall_s=0.0),
        ]
        _write(tmp_path / "t.worker-g1-1.jsonl", block)
        return parent, str(tmp_path / "t.jsonl")

    def test_stream_matches_written_merge(self, tmp_path):
        from repro.parallel.merge import iter_merged_records

        parent, out = self._shard_set(tmp_path)
        shards = discover_trace_shards(out)
        streamed = list(iter_merged_records(parent, shards))
        merge_run_traces(parent, shards, out)
        assert streamed == list(read_trace(out, validate=False))

    def test_extract_sharded_ledger_without_merged_file(self, tmp_path):
        from repro.parallel.merge import extract_sharded_ledger

        _parent, out = self._shard_set(tmp_path)
        ledger = str(tmp_path / "t.forensics.jsonl")
        census = extract_sharded_ledger(out, ledger)
        assert census["records"] == 3
        assert census["kinds"] == {
            "forensic_row": 1, "pril_grant": 1, "test_started": 1,
        }
        assert census["verdicts"] == {"composed": 1}
        written = [json.loads(line) for line in open(ledger)]
        assert [r["kind"] for r in written] == [
            "pril_grant", "test_started", "forensic_row",
        ]

    def test_ledger_file_is_not_mistaken_for_a_shard(self, tmp_path):
        # The ledger lives next to the trace; the worker-shard glob must
        # never pick it up on a later re-merge.
        _parent, out = self._shard_set(tmp_path)
        (tmp_path / "t.forensics.jsonl").write_text("")
        shards = discover_trace_shards(out)
        assert all("forensics" not in shard for shard in shards)
