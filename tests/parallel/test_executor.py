"""Supervision loop: inline mode, crashes, retries, timeouts, skip-done."""

import os

import pytest

from repro.parallel.checkpoint import CheckpointJournal
from repro.parallel.executor import (
    ParallelExecutor,
    WorkerObsConfig,
    metrics_shard_path,
    trace_shard_path,
)
from repro.parallel.units import WorkUnit, register_experiment, unit_fingerprint

register_experiment("fake", "tests.parallel.fakes")


def _fake_units(n=4, **extra_params):
    return [
        WorkUnit(
            "fake", f"u{i}", {"value": i * 10 + 1, **extra_params},
            seq=i, module="tests.parallel.fakes",
        )
        for i in range(n)
    ]


def _expected_payloads(units):
    return [
        {"value": u.params["value"], "squared": u.params["value"] ** 2}
        for u in units
    ]


class TestInline:
    def test_jobs_1_runs_in_parent(self):
        units = _fake_units()
        with ParallelExecutor(1) as ex:
            payloads, stats = ex.run_units(units)
        assert payloads == _expected_payloads(units)
        assert stats.executed == 4
        assert set(stats.accepted_shards.values()) == {"parent"}
        assert ex._pool is None  # never built one

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)
        with pytest.raises(ValueError):
            ParallelExecutor(1, unit_timeout_s=0)
        with pytest.raises(ValueError):
            ParallelExecutor(1, max_retries=-1)


class TestPooled:
    def test_payloads_arrive_in_seq_order(self):
        units = _fake_units(8)
        with ParallelExecutor(2, chunk_size=1) as ex:
            payloads, stats = ex.run_units(units)
        assert payloads == _expected_payloads(units)
        assert stats.executed == 8
        assert stats.degraded == 0
        topo = ex.topology()
        assert topo["jobs"] == 2
        assert sum(w["units"] for w in topo["workers"]) == 8

    def test_raising_unit_retries_then_degrades_serially(self):
        # The unit raises in any process but this one; after max_retries
        # worker attempts the parent runs it inline, where it succeeds.
        units = _fake_units(2, raise_away=True, home_pid=os.getpid())
        with ParallelExecutor(2, max_retries=1, chunk_size=1) as ex:
            payloads, stats = ex.run_units(units)
        assert payloads == _expected_payloads(units)
        assert stats.retried == 2   # one retry per unit
        assert stats.degraded == 2  # then the serial fallback
        assert set(stats.accepted_shards.values()) == {"parent"}

    def test_worker_crash_rebuilds_pool_and_degrades(self):
        units = _fake_units(2, crash_away=True, home_pid=os.getpid())
        with ParallelExecutor(2, max_retries=0, chunk_size=1) as ex:
            payloads, stats = ex.run_units(units)
        assert payloads == _expected_payloads(units)
        assert stats.degraded == 2
        assert stats.pool_rebuilds >= 1

    def test_unit_timeout_terminates_and_degrades(self):
        units = _fake_units(1, sleep_away=30.0, home_pid=os.getpid())
        with ParallelExecutor(
            2, max_retries=0, chunk_size=1, unit_timeout_s=0.5
        ) as ex:
            payloads, stats = ex.run_units(units)
        assert payloads == _expected_payloads(units)
        assert stats.timeouts == 1
        assert stats.degraded == 1

    def test_deterministic_failure_surfaces_in_parent(self):
        # home_pid=0 matches nothing: the unit fails everywhere, so the
        # degrade path re-raises the real exception in the parent.
        units = _fake_units(1, raise_away=True, home_pid=0)
        with ParallelExecutor(2, max_retries=0, chunk_size=1) as ex:
            with pytest.raises(RuntimeError, match="synthetic failure"):
                ex.run_units(units)


class TestSkipAndJournal:
    def test_done_entries_skip_matching_fingerprints(self):
        units = _fake_units()
        done = {
            units[0].key: {
                "fp": unit_fingerprint(units[0], True, 1),
                "payload": {"value": -1, "squared": 1},
            },
            # Stale fingerprint: must be re-executed, not trusted.
            units[1].key: {"fp": "stale", "payload": {"value": -2}},
        }
        with ParallelExecutor(1) as ex:
            payloads, stats = ex.run_units(units, done=done)
        assert stats.skipped == 1
        assert stats.executed == 3
        assert payloads[0] == {"value": -1, "squared": 1}  # journalled value
        assert payloads[1] == _expected_payloads(units)[1]

    def test_accepted_units_are_journalled_immediately(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        units = _fake_units()
        with ParallelExecutor(1) as ex:
            ex.run_units(units, journal=journal)
        journal.close()
        entries = CheckpointJournal(str(tmp_path / "j.jsonl")).load()
        assert set(entries) == {u.key for u in units}
        for unit, payload in zip(units, _expected_payloads(units)):
            assert entries[unit.key]["payload"] == payload
            assert entries[unit.key]["fp"] == unit_fingerprint(unit, True, 1)

    def test_on_unit_progress_callback(self):
        units = _fake_units(2)
        seen = []
        done = {
            units[0].key: {
                "fp": unit_fingerprint(units[0], True, 1), "payload": {},
            }
        }
        with ParallelExecutor(1) as ex:
            ex.run_units(
                units, done=done,
                on_unit=lambda u, skipped: seen.append((u.unit_id, skipped)),
            )
        assert sorted(seen) == [("u0", True), ("u1", False)]

    def test_on_result_streams_fresh_and_skipped_payloads(self):
        units = _fake_units(3)
        done = {
            units[0].key: {
                "fp": unit_fingerprint(units[0], True, 1),
                "payload": {"value": -1, "squared": 1},
            }
        }
        streamed = {}
        with ParallelExecutor(1) as ex:
            payloads, _ = ex.run_units(
                units, done=done,
                on_result=lambda u, p: streamed.setdefault(u.unit_id, p),
            )
        assert streamed == {
            "u0": {"value": -1, "squared": 1},
            "u1": payloads[1],
            "u2": payloads[2],
        }

    def test_per_call_seed_override_controls_fingerprints(self):
        # A journal written under one seed must not satisfy a run under
        # another seed through the same warm executor.
        units = _fake_units(2)
        done = {
            u.key: {
                "fp": unit_fingerprint(u, True, 7),
                "payload": {"value": 0, "squared": 0},
            }
            for u in units
        }
        with ParallelExecutor(1, seed=1) as ex:
            _, stats_other = ex.run_units(units, done=done, seed=8)
            _, stats_match = ex.run_units(units, done=done, seed=7)
        assert stats_other.skipped == 0 and stats_other.executed == 2
        assert stats_match.skipped == 2 and stats_match.executed == 0

    def test_per_call_quick_override_controls_fingerprints(self):
        units = _fake_units(1)
        done = {
            units[0].key: {
                "fp": unit_fingerprint(units[0], False, 1),
                "payload": {"value": 0, "squared": 0},
            }
        }
        with ParallelExecutor(1, quick=True) as ex:
            _, stats = ex.run_units(units, done=done, quick=False)
        assert stats.skipped == 1


class TestShardPaths:
    def test_trace_shard_path_keeps_extension(self):
        assert trace_shard_path("t.jsonl", "worker-g1-9") == "t.worker-g1-9.jsonl"
        assert trace_shard_path("t", "parent") == "t.parent.jsonl"

    def test_metrics_shard_path(self):
        assert metrics_shard_path("m.json", "worker-g1-9") == "m.worker-g1-9.json"


class TestWorkerObs:
    def test_workers_write_trace_and_metric_shards(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        metrics = str(tmp_path / "m.json")
        units = _fake_units(4)
        with ParallelExecutor(
            2, chunk_size=1,
            obs_cfg=WorkerObsConfig(trace_base=trace, metrics_base=metrics),
        ) as ex:
            payloads, _ = ex.run_units(units)
        ex.shutdown()
        assert payloads == _expected_payloads(units)
        from repro.parallel.merge import (
            discover_metric_shards,
            discover_trace_shards,
        )

        shards = discover_trace_shards(trace)
        assert shards
        from repro.obs import read_trace

        markers = [
            r["kind"]
            for shard in shards
            for r in read_trace(shard, validate=False)
        ]
        assert markers.count("unit_started") == 4
        assert markers.count("unit_finished") == 4
        assert discover_metric_shards(metrics)


class TestTelemetryBus:
    def test_bus_collects_heartbeats_into_topology(self):
        from repro import obs

        units = _fake_units(4)
        with ParallelExecutor(2, chunk_size=1) as ex:
            bus = obs.TelemetryBus(
                ctx=__import__("multiprocessing").get_context(
                    ex.start_method)
            )
            ex.attach_bus(bus)
            try:
                payloads, stats = ex.run_units(units)
                topo = ex.topology()
            finally:
                bus.close()
        assert payloads == _expected_payloads(units)
        telemetry = topo["telemetry"]
        assert telemetry["drained"] > 0
        rows = telemetry["workers"]
        assert sum(r["units_done"] for r in rows) == 4
        # Each unit leaves a closed interval with its wall time.
        intervals = [iv for r in rows for iv in r["timeline"]]
        assert len(intervals) == 4
        assert all(iv["t_end"] is not None for iv in intervals)
        assert stats.workers_lost == 0

    def test_attach_bus_after_pool_start_rejected(self):
        from repro import obs

        units = _fake_units(2)
        with ParallelExecutor(2, chunk_size=1) as ex:
            ex.run_units(units)
            bus = obs.TelemetryBus()
            try:
                with pytest.raises(RuntimeError):
                    ex.attach_bus(bus)
            finally:
                bus.close()

    def test_worker_crash_emits_worker_lost(self):
        from repro import obs

        units = _fake_units(1, crash_away=True, home_pid=os.getpid())
        sink = obs.ListTraceSink()
        previous = obs.set_sink(sink)
        try:
            with ParallelExecutor(2, max_retries=0, chunk_size=1) as ex:
                bus = obs.TelemetryBus(
                    ctx=__import__("multiprocessing").get_context(
                        ex.start_method)
                )
                ex.attach_bus(bus)
                try:
                    payloads, stats = ex.run_units(units)
                finally:
                    bus.close()
        finally:
            obs.set_sink(previous)
        assert payloads == _expected_payloads(units)  # degraded serially
        assert stats.workers_lost >= 1
        lost = [r for r in sink.records if r["kind"] == "worker_lost"]
        assert lost, "expected a worker_lost trace event"
        # The event names the last-known unit and its fingerprint (the
        # fingerprint may be None when the bus had no open interval).
        assert lost[0]["unit"] == "u0"
        assert lost[0]["experiment"] == "fake"
        assert "fingerprint" in lost[0]
        lost_events = [e for e in bus.events if e["kind"] == "worker_lost"]
        assert lost_events
