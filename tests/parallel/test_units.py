"""Work-unit decomposition: validity, determinism, JSON-safety, fallback."""

import json

import pytest

from repro.experiments.runner import EXPERIMENTS
from repro.parallel.units import (
    WorkUnit,
    decompose,
    execute_unit,
    merge_payloads,
    register_experiment,
    unit_fingerprint,
)

#: Cheap experiments whose full unit path is worth executing in tests.
FAST_EXPERIMENTS = ("fig06", "fig08", "fig19")


class TestDecomposition:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_every_experiment_decomposes_validly(self, name):
        units = decompose(name, quick=True, seed=1)
        assert units, f"{name} produced no units"
        assert [u.seq for u in units] == list(range(len(units)))
        assert len({u.key for u in units}) == len(units)
        for unit in units:
            assert unit.experiment == name
            assert unit.module == f"repro.experiments.{name}"
            # Params must survive the journal's JSON round trip exactly.
            assert json.loads(json.dumps(unit.params)) == unit.params

    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_decomposition_is_deterministic(self, name):
        assert decompose(name, quick=True, seed=3) == decompose(
            name, quick=True, seed=3
        )

    def test_multi_unit_experiments_really_shard(self):
        # The headline decompositions: fig04 row-range scans + benchmarks,
        # fig14 one unit per workload trace.
        assert len(decompose("fig04", quick=True, seed=1)) > 20
        assert len(decompose("fig14", quick=True, seed=1)) == 12

    def test_fig04_scan_units_carry_rng_coordinates(self):
        scans = [
            u for u in decompose("fig04", quick=True, seed=1)
            if "rows" in u.params
        ]
        assert scans
        for unit in scans:
            rng = unit.params["rng"]
            assert rng["rows"] == unit.params["rows"]
            int(rng["seed_base"], 16)  # seed coordinates, not a row count

    @pytest.mark.parametrize("name", FAST_EXPERIMENTS)
    def test_unit_path_payloads_are_json_safe(self, name):
        units = decompose(name, quick=True, seed=1)
        payloads = [execute_unit(u, quick=True, seed=1) for u in units]
        round_tripped = json.loads(json.dumps(payloads))
        assert round_tripped == payloads
        merged = merge_payloads(name, round_tripped, quick=True, seed=1)
        assert merged.to_text() == EXPERIMENTS[name](quick=True, seed=1).to_text()


class TestFingerprint:
    def test_sensitive_to_inputs(self):
        unit = WorkUnit("fig06", "u0", {"lo_ms": 64.0})
        base = unit_fingerprint(unit, True, 1)
        assert unit_fingerprint(unit, True, 2) != base
        assert unit_fingerprint(unit, False, 1) != base
        other = WorkUnit("fig06", "u0", {"lo_ms": 128.0})
        assert unit_fingerprint(other, True, 1) != base

    def test_stable_across_param_ordering(self):
        a = WorkUnit("x", "u", {"a": 1, "b": 2})
        b = WorkUnit("x", "u", {"b": 2, "a": 1})
        assert unit_fingerprint(a, True, 1) == unit_fingerprint(b, True, 1)


class TestValidationAndFallback:
    def test_duplicate_unit_ids_rejected(self, monkeypatch):
        import tests.parallel.fakes as fakes

        register_experiment("fake", "tests.parallel.fakes")
        monkeypatch.setattr(
            fakes, "units",
            lambda quick=True, seed=1: [
                WorkUnit("fake", "dup", {}, seq=0),
                WorkUnit("fake", "dup", {}, seq=1),
            ],
        )
        with pytest.raises(ValueError, match="duplicate"):
            decompose("fake")

    def test_non_contiguous_seq_rejected(self, monkeypatch):
        import tests.parallel.fakes as fakes

        register_experiment("fake", "tests.parallel.fakes")
        monkeypatch.setattr(
            fakes, "units",
            lambda quick=True, seed=1: [
                WorkUnit("fake", "a", {}, seq=0),
                WorkUnit("fake", "b", {}, seq=2),
            ],
        )
        with pytest.raises(ValueError, match="seq"):
            decompose("fake")

    def test_hookless_module_becomes_single_opaque_unit(self):
        register_experiment("opaque", "tests.parallel.fakes_opaque")
        units = decompose("opaque", quick=True, seed=5)
        assert len(units) == 1
        assert units[0].unit_id == "all"
        payload = execute_unit(units[0], quick=True, seed=5)
        assert payload == json.loads(json.dumps(payload))
        merged = merge_payloads(
            "opaque", [payload], quick=True, seed=5,
            module="tests.parallel.fakes_opaque",
        )
        assert merged.rows == [{"seed": 5, "quick": True}]
        assert merged.notes == "rendered by run()"

    def test_opaque_merge_requires_exactly_one_payload(self):
        with pytest.raises(ValueError, match="exactly one"):
            merge_payloads(
                "opaque", [{}, {}], module="tests.parallel.fakes_opaque"
            )

    def test_registered_module_is_stamped_on_units(self):
        register_experiment("fake", "tests.parallel.fakes")
        units = decompose("fake", quick=True, seed=1)
        assert all(u.module == "tests.parallel.fakes" for u in units)
