"""The headline property: sharded execution is bit-identical to serial.

``run()`` is structurally ``merge_units([run_unit(u) for u in units()])``,
so these tests pin the whole pipeline — decomposition, process-pool
dispatch, JSON journal round-trip, seq-ordered merge — against the
serial renderings, byte for byte, for several worker counts. The trace
merge gets the same treatment: windowed rollups computed from a sharded
run's merged trace must equal the serial run's.
"""

import pytest

from repro.experiments.runner import main
from repro.obs import load_manifest


def _run(tmp_path, name, tag, *extra):
    out = tmp_path / f"{name}-{tag}.md"
    args = [name, "--out", str(out),
            "--checkpoint", str(tmp_path / f"{tag}.ckpt.jsonl")]
    args.extend(extra)
    assert main(args) == 0
    return out.read_text()


class TestShardedEqualsSerial:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_fig04_bit_identical(self, tmp_path, capsys, jobs):
        serial = _run(tmp_path, "fig04", "serial")
        sharded = _run(tmp_path, "fig04", f"j{jobs}", "--jobs", str(jobs))
        assert sharded == serial

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_fig14_bit_identical(self, tmp_path, capsys, jobs):
        serial = _run(tmp_path, "fig14", "serial")
        sharded = _run(tmp_path, "fig14", f"j{jobs}", "--jobs", str(jobs))
        assert sharded == serial

    def test_multi_experiment_run_bit_identical(self, tmp_path, capsys):
        serial = _run(tmp_path, "fig06", "s2")
        serial += _run(tmp_path, "fig08", "s3")
        combined_out = tmp_path / "combined.md"
        assert main(["fig06", "fig08", "--jobs", "2",
                     "--out", str(combined_out),
                     "--checkpoint", str(tmp_path / "c.ckpt.jsonl")]) == 0
        assert combined_out.read_text() == serial

    def test_seed_flows_through_the_unit_path(self, tmp_path, capsys):
        serial = _run(tmp_path, "fig06", "seed9", "--seed", "9")
        sharded = _run(tmp_path, "fig06", "seed9-j2", "--seed", "9",
                       "--jobs", "2")
        assert sharded == serial


class TestMergedObservability:
    def test_fig04_trace_rollups_match_serial(self, tmp_path, capsys):
        serial_manifest = tmp_path / "serial.manifest.json"
        assert main(["fig04", "--trace", str(tmp_path / "serial.jsonl"),
                     "--manifest", str(serial_manifest)]) == 0
        sharded_manifest = tmp_path / "sharded.manifest.json"
        assert main(["fig04", "--jobs", "2",
                     "--trace", str(tmp_path / "sharded.jsonl"),
                     "--manifest", str(sharded_manifest),
                     "--checkpoint", str(tmp_path / "c.ckpt.jsonl")]) == 0
        serial = load_manifest(str(serial_manifest))
        sharded = load_manifest(str(sharded_manifest))
        assert sharded["timeseries"] == serial["timeseries"]
        assert sharded["workers"]["jobs"] == 2
        assert sharded["workers"]["stats"]["degraded"] == 0

    def test_shard_files_cleaned_up_after_merge(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        assert main(["fig06", "--jobs", "2", "--trace", str(trace),
                     "--metrics", str(metrics),
                     "--checkpoint", str(tmp_path / "c.ckpt.jsonl")]) == 0
        leftovers = [p.name for p in tmp_path.iterdir() if "worker" in p.name
                     or "parent" in p.name]
        assert leftovers == []
        assert trace.exists() and metrics.exists()
