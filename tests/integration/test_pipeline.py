"""Integration: cross-module pipelines the library is meant to support.

These tests chain the public API the way the examples and experiments do:
temperature-guardbanded SoftMC testing, content screening feeding ECC
mitigation, trace capture feeding PRIL analysis, and the refresh-reduction
to performance-simulation handoff.
"""

import numpy as np
import pytest

from repro.analysis import (
    evaluate_predictor,
    fit_pareto,
    time_in_long_intervals,
)
from repro.core import (
    MemconConfig,
    choose_mitigation,
    simulate_refresh_reduction,
    summarise_mitigations,
)
from repro.dram import (
    DEFAULT_TEMPERATURE_MODEL,
    DramDevice,
    DramGeometry,
)
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.sim import simulate_workload, speedup
from repro.testinfra import SoftMCTester
from repro.testinfra.hmtt import capture_workload
from repro.traces import BENCHMARKS, WORKLOADS, generate_trace


def _dense_device(seed=3, rate=2e-3):
    geometry = DramGeometry(
        channels=1, ranks=1, banks=2, rows_per_bank=32,
        row_size_bytes=512, block_size_bytes=64,
    )
    device = DramDevice(geometry, seed=seed)
    device.cells.fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=device.cells.vendor_mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=rate),
        seed=seed,
    )
    return device


class TestTemperatureGuardedTesting:
    def test_cool_test_covers_hot_operation(self):
        """Testing at a cool lab temperature with the paper's conversion
        must catch at least the failures seen at the hot equivalent."""
        device = _dense_device()
        tester = SoftMCTester(device)
        image = BENCHMARKS["lbm"].content.generate_image(
            8, device.geometry.row_size_bytes, seed=2,
        )
        # Hot condition: 328 ms at 85C. Equivalent cool test: 4 s at 45C.
        cool_interval = DEFAULT_TEMPERATURE_MODEL.scale_interval(
            328.0, 85.0, 45.0
        )
        assert cool_interval == pytest.approx(4000.0)
        hot_report = tester.test_content(image, 328.0, replicate=True)
        # The fault model keys on the stress-equivalent interval, so the
        # cool 4 s test at the scaled interval finds the same rows.
        device2 = _dense_device()
        tester2 = SoftMCTester(device2)
        cool_report = tester2.test_content(
            image,
            DEFAULT_TEMPERATURE_MODEL.scale_interval(
                cool_interval, 45.0, 85.0
            ),
            replicate=True,
        )
        assert cool_report.failing_rows == hot_report.failing_rows


class TestScreeningToMitigation:
    def test_content_failures_feed_ecc_decisions(self):
        device = _dense_device(rate=5e-3)
        rng = np.random.default_rng(4)
        decisions = []
        for row in range(device.geometry.total_rows):
            device.write_row(
                row,
                rng.integers(0, 256, 512, dtype=np.uint8).tobytes(),
                now_ms=0.0,
            )
            failing = device.cells.failing_cells(row, 328.0)
            decisions.append(choose_mitigation(failing))
        summary = summarise_mitigations(decisions)
        assert summary.total == device.geometry.total_rows
        # ECC must strictly reduce the HI-REF population vs no-ECC.
        no_ecc = summarise_mitigations([
            choose_mitigation(device.cells.failing_cells(row, 328.0),
                              ecc_enabled=False)
            for row in range(device.geometry.total_rows)
        ])
        assert summary.hi_ref_rows <= no_ecc.hi_ref_rows


class TestTraceToPrediction:
    def test_captured_trace_supports_full_analysis(self):
        trace = capture_workload(WORKLOADS["BlurMotion"], seed=5)
        intervals = trace.all_intervals()
        fit = fit_pareto(intervals[intervals >= 2.0], x_min=2.0,
                         x_max=trace.duration_ms / 40)
        assert fit.r_squared > 0.9
        assert time_in_long_intervals(trace) > 0.8
        quality = evaluate_predictor(trace, cil_ms=1024.0)
        assert quality.accuracy > 0.5
        report = simulate_refresh_reduction(
            trace, MemconConfig(quantum_ms=1024.0),
        )
        assert 0.5 < report.refresh_reduction < 0.75


class TestReductionToPerformance:
    def test_measured_reduction_drives_simulator(self):
        trace = generate_trace(WORKLOADS["Netflix"], seed=6,
                               duration_ms=15_000.0)
        report = simulate_refresh_reduction(
            trace, MemconConfig(quantum_ms=1024.0),
        )
        base = simulate_workload(["mcf"], density_gbit=32,
                                 window_ns=50_000.0, seed=7)
        memcon = simulate_workload(
            ["mcf"], density_gbit=32,
            refresh_reduction=report.refresh_reduction,
            concurrent_tests=256, window_ns=50_000.0, seed=7,
        )
        gain = speedup(memcon, base)
        assert gain > 1.15  # dense chip, memory-bound core: real win
