"""End-to-end checks of the fast (non-simulator) experiments.

Each test runs the experiment in quick mode and asserts the *shape* claim
the paper makes — who wins, by roughly what factor, where crossovers fall.
"""

import pytest

from repro.experiments import (
    fig03, fig04, fig06, fig07, fig08, fig09, fig11, fig12,
    fig14, fig17, fig18, fig19,
)


class TestFig03:
    def test_failures_are_pattern_conditional(self):
        result = fig03.run(quick=True, seed=1)
        counts = [row["failing_cells"] for row in result.rows]
        # Different patterns trip different numbers of cells; solid0 rows
        # never charge true-cells so variance must exist.
        assert max(counts) > min(counts)

    def test_scatter_points_exist(self):
        points = fig03.cell_pattern_matrix(quick=True, seed=1)
        assert len(points) > 50
        cells = {cell for cell, _ in points}
        patterns_per_cell = {
            cell: {p for c, p in points if c == cell} for cell in cells
        }
        n_patterns = 24
        conditional = [
            cell for cell, pats in patterns_per_cell.items()
            if 0 < len(pats) < n_patterns
        ]
        assert len(conditional) > 0.5 * len(cells)


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04.run(quick=True, seed=1)

    def test_all_fail_near_paper(self, result):
        all_fail = float(result.rows[-1]["failing_rows"].rstrip("%"))
        assert 10.0 <= all_fail <= 18.0  # paper: 13.5%

    def test_program_content_fails_far_less(self, result):
        fractions = [
            float(row["failing_rows"].rstrip("%"))
            for row in result.rows[:-1]
        ]
        all_fail = float(result.rows[-1]["failing_rows"].rstrip("%"))
        assert max(fractions) < all_fail / 2      # at least 2x fewer
        assert min(fractions) < all_fail / 20     # sparse content ~30x fewer

    def test_perlbench_sparser_than_lbm(self, result):
        by_name = {row["benchmark"]: row for row in result.rows}
        perl = float(by_name["perlbench"]["failing_rows"].rstrip("%"))
        lbm = float(by_name["lbm"]["failing_rows"].rstrip("%"))
        assert perl < lbm


class TestFig06:
    def test_every_crossover_matches_paper(self):
        result = fig06.run()
        assert all(row["match"] == "yes" for row in result.rows)

    def test_curve_series_monotone(self):
        times, hi, read_cmp, copy_cmp = fig06.cost_curve_series(1500.0)
        assert hi == sorted(hi)
        assert read_cmp == sorted(read_cmp)
        assert copy_cmp[0] > read_cmp[0]  # Copy&Compare starts higher


class TestFig07:
    def test_sub_ms_majority(self):
        result = fig07.run(quick=True, seed=1)
        for row in result.rows:
            assert float(row["<1ms"].rstrip("%")) > 95.0

    def test_long_intervals_rare_by_count(self):
        result = fig07.run(quick=True, seed=1)
        for row in result.rows:
            assert float(row[">=1024ms"].rstrip("%")) < 2.0


class TestFig08:
    def test_pareto_fits_meet_paper_quality(self):
        result = fig08.run(quick=True, seed=1)
        for row in result.rows:
            assert row["r_squared"] > 0.93
            assert row["dhr"] == "True"


class TestFig09:
    def test_long_intervals_dominate_time(self):
        result = fig09.run(quick=True, seed=1)
        average = result.rows[-1]
        assert average["workload"] == "AVERAGE"
        assert float(average["time_in_long_intervals"].rstrip("%")) > 80.0


class TestFig11:
    def test_dhr_shape(self):
        result = fig11.run(quick=True, seed=1)
        for row in result.rows:
            assert row["cil_64ms"] < row["cil_512ms"] < row["cil_16384ms"]
            # Paper: ~50-80% at CIL = 512 ms; near 1 past 16 s.
            assert 0.4 <= row["cil_512ms"] <= 0.9
            assert row["cil_16384ms"] > 0.85


class TestFig12:
    def test_coverage_decreases_with_cil(self):
        result = fig12.run(quick=True, seed=1)
        for row in result.rows:
            assert row["cil_64ms"] >= row["cil_2048ms"] >= row["cil_32768ms"]
            # Paper's sweet spot: 512-2048 ms retains most interval time.
            assert row["cil_2048ms"] > 0.6


class TestFig14:
    def test_reduction_in_paper_band(self):
        result = fig14.run(quick=True, seed=1)
        for row in result.rows:
            for key in ("cil_512ms", "cil_1024ms", "cil_2048ms"):
                value = float(row[key].rstrip("%"))
                assert 55.0 <= value <= 75.0
                assert value < 75.0  # never beats the upper bound


class TestFig17:
    def test_lo_ref_coverage_high(self):
        result = fig17.run(quick=True, seed=1)
        for row in result.rows:
            assert float(row["cil_1024ms"].rstrip("%")) > 75.0


class TestFig18:
    def test_testing_time_negligible(self):
        result = fig18.run(quick=True, seed=1)
        for row in result.rows:
            correct = float(row["testing_correct"].rstrip("%"))
            mispredicted = float(row["testing_mispredicted"].rstrip("%"))
            refresh = float(row["refresh"].rstrip("%"))
            assert correct + mispredicted < 3.0
            assert refresh < 45.0
            # At the paper's 8 GB module scale testing vanishes entirely.
            assert float(row["testing_at_8GB"].rstrip("%")) < 0.01


class TestFig19:
    def test_halving_barely_moves_probability(self):
        result = fig19.run(quick=True, seed=1)
        for row in result.rows:
            assert abs(row["delta"]) < 0.1
