"""Reduced-scale checks of the simulator-driven experiments.

The full fig15/fig16/table3 runs take minutes; these tests exercise the
same code paths with a couple of workloads and short windows, asserting
the orderings the paper reports rather than the full sweep.
"""

import pytest

from repro.sim.metrics import geometric_mean, speedup
from repro.sim.system import simulate_workload

WINDOW_NS = 50_000.0
WORKLOADS = (["mcf"], ["lbm"])


def _mean_speedup(reduction, density=32, tests=0, seed=3):
    ratios = []
    for i, names in enumerate(WORKLOADS):
        base = simulate_workload(names, density_gbit=density,
                                 window_ns=WINDOW_NS, seed=seed + i)
        variant = simulate_workload(
            names, density_gbit=density, refresh_reduction=reduction,
            concurrent_tests=tests, window_ns=WINDOW_NS, seed=seed + i,
        )
        ratios.append(speedup(variant, base))
    return geometric_mean(ratios)


class TestFig15Shape:
    def test_75_beats_60_percent_reduction(self):
        assert _mean_speedup(0.75) > _mean_speedup(0.60)

    def test_speedup_grows_with_density(self):
        assert _mean_speedup(0.75, density=32) > _mean_speedup(
            0.75, density=8
        )

    def test_32gb_improvement_in_paper_band(self):
        # Paper: ~40-50% mean improvement for memory-bound workloads.
        assert 1.2 < _mean_speedup(0.75, density=32, tests=256) < 1.75


class TestFig16Shape:
    def test_mechanism_ordering(self):
        # 32 ms < RAIDR < MEMCON <= ideal 64 ms, as in the paper.
        s_32ms = _mean_speedup(0.50)
        s_raidr = _mean_speedup(0.63)
        s_memcon = _mean_speedup(0.66, tests=256)
        s_ideal = _mean_speedup(0.75)
        assert s_32ms < s_raidr
        assert s_raidr < s_memcon + 0.02
        assert s_memcon < s_ideal + 0.02

    def test_memcon_close_to_ideal(self):
        # Paper: within 3-5% of the 64 ms ideal.
        gap = _mean_speedup(0.75) / _mean_speedup(0.66, tests=256)
        assert gap < 1.12


class TestTable3Shape:
    def test_more_tests_cost_more(self):
        base = _mean_speedup(0.66, tests=0)
        losses = [
            1.0 - _mean_speedup(0.66, tests=n) / base
            for n in (256, 1024)
        ]
        assert losses[1] >= losses[0] - 0.005

    def test_testing_overhead_small(self):
        base = _mean_speedup(0.66, tests=0)
        loss = 1.0 - _mean_speedup(0.66, tests=1024) / base
        assert loss < 0.05  # paper: at most ~2%
