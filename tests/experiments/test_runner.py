"""Tests for the experiment runner and result rendering."""

import pytest

from repro.experiments.common import ExperimentResult, percent
from repro.experiments.runner import EXPERIMENTS, run_experiments


class TestExperimentResult:
    def test_columns_preserve_order(self):
        result = ExperimentResult("x", "t", "claim")
        result.add_row(a=1, b=2)
        result.add_row(b=3, c=4)
        assert result.columns() == ["a", "b", "c"]

    def test_to_text_contains_everything(self):
        result = ExperimentResult("fig99", "Example", "paper says 42")
        result.add_row(metric="speedup", value=1.5)
        result.notes = "a note"
        text = result.to_text()
        assert "fig99" in text
        assert "paper says 42" in text
        assert "speedup" in text
        assert "1.500" in text
        assert "a note" in text

    def test_to_text_without_rows(self):
        result = ExperimentResult("fig99", "Empty", "claim")
        assert "fig99" in result.to_text()

    def test_percent_helper(self):
        assert percent(0.1234) == "12.3%"
        assert percent(0.1234, 2) == "12.34%"


class TestRunner:
    def test_registry_covers_all_paper_artifacts(self):
        assert set(EXPERIMENTS) == {
            "fig03", "fig04", "fig06", "fig07", "fig08", "fig09",
            "fig11", "fig12", "fig14", "fig15", "fig16", "fig17",
            "fig18", "fig19", "table3", "hammer01", "hammer02",
        }

    def test_run_named_subset(self):
        results = run_experiments(["fig06"], quick=True)
        assert len(results) == 1
        assert results[0].experiment_id == "fig06"

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            run_experiments(["fig99"])
