"""Micro-scale tests for the simulator-driven experiment internals.

The full fig15/fig16/table3 sweeps run in the benchmark suite; these
tests exercise their helper functions and registries directly with tiny
inputs so the experiment code paths stay covered by the fast suite.
"""

import pytest

from repro.experiments import fig15, fig16, table3
from repro.sim.workloads import singlecore_workloads


class TestFig15Internals:
    def test_paper_targets_complete(self):
        # Every (cores, reduction, density) combination has a target.
        assert len(fig15.PAPER_IMPROVEMENT) == 12
        for cores in (1, 4):
            for reduction in fig15.REDUCTIONS:
                for density in fig15.DENSITIES_GBIT:
                    assert (cores, reduction, density) in fig15.PAPER_IMPROVEMENT

    def test_improvement_targets_monotone_in_density(self):
        for cores in (1, 4):
            for reduction in fig15.REDUCTIONS:
                values = [
                    fig15.PAPER_IMPROVEMENT[(cores, reduction, d)]
                    for d in fig15.DENSITIES_GBIT
                ]
                assert values == sorted(values)

    def test_mean_speedup_single_workload(self):
        mean = fig15._mean_speedup(
            singlecore_workloads(1, seed=1), density=32, reduction=0.75,
            window_ns=30_000.0, seed=1,
        )
        assert mean > 1.0


class TestFig16Internals:
    def test_mechanism_reductions_ordered(self):
        reductions = [reduction for _, reduction, _ in fig16.MECHANISMS]
        assert reductions == sorted(reductions)

    def test_raidr_reduction_formula(self):
        # 16% HI rows at 4:1 rate ratio -> 63%.
        raidr = dict(
            (label, reduction) for label, reduction, _ in fig16.MECHANISMS
        )["RAIDR"]
        assert raidr == pytest.approx(0.63)

    def test_only_memcon_injects_tests(self):
        testing = {
            label: tests for label, _, tests in fig16.MECHANISMS
        }
        assert testing["MEMCON"] > 0
        assert testing["32ms"] == testing["RAIDR"] == testing["64ms"] == 0


class TestTable3Internals:
    def test_paper_losses_monotone_in_tests(self):
        for cores in (1, 4):
            values = [
                table3.PAPER_LOSS[(cores, n)]
                for n in table3.CONCURRENT_TESTS
            ]
            assert values == sorted(values)

    def test_multicore_losses_below_singlecore(self):
        for n in table3.CONCURRENT_TESTS:
            assert table3.PAPER_LOSS[(4, n)] < table3.PAPER_LOSS[(1, n)]
