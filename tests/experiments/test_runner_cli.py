"""Tests for the command-line entry point."""

import pytest

from repro.experiments.runner import main


class TestCli:
    def test_single_experiment_prints_table(self, capsys):
        assert main(["fig06"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "560" in out

    def test_out_file_written(self, tmp_path, capsys):
        target = tmp_path / "results.md"
        assert main(["fig06", "--out", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("```")
        assert "min_write_interval_ms" in content

    def test_out_file_truncated_between_runs(self, tmp_path, capsys):
        target = tmp_path / "results.md"
        target.write_text("stale content from an earlier run\n")
        main(["fig06", "--out", str(target)])
        first = target.read_text()
        assert "stale content" not in first
        main(["fig06", "--out", str(target)])
        assert target.read_text() == first

    def test_seed_flag_accepted(self, capsys):
        assert main(["fig06", "--seed", "7"]) == 0

    def test_fig03_quick_smoke(self, capsys):
        from repro.experiments.runner import run_experiments

        results = run_experiments(["fig03"], quick=True)
        assert len(results) == 1
        assert results[0].experiment_id == "fig03"
        assert results[0].rows  # one entry per pattern

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])
