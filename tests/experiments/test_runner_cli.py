"""Tests for the command-line entry point."""

import pytest

from repro.experiments.runner import main


class TestCli:
    def test_single_experiment_prints_table(self, capsys):
        assert main(["fig06"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "560" in out

    def test_out_file_written(self, tmp_path, capsys):
        target = tmp_path / "results.md"
        assert main(["fig06", "--out", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("```")
        assert "min_write_interval_ms" in content

    def test_out_file_appends(self, tmp_path, capsys):
        target = tmp_path / "results.md"
        main(["fig06", "--out", str(target)])
        first = target.read_text()
        main(["fig06", "--out", str(target)])
        assert len(target.read_text()) == 2 * len(first)

    def test_seed_flag_accepted(self, capsys):
        assert main(["fig06", "--seed", "7"]) == 0

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])
