"""Tests for the command-line entry point."""

import json

import pytest

from repro import obs
from repro.experiments.runner import main


class TestCli:
    def test_single_experiment_prints_table(self, capsys):
        assert main(["fig06"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "560" in out

    def test_out_file_written(self, tmp_path, capsys):
        target = tmp_path / "results.md"
        assert main(["fig06", "--out", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("```")
        assert "min_write_interval_ms" in content

    def test_out_file_truncated_between_runs(self, tmp_path, capsys):
        target = tmp_path / "results.md"
        target.write_text("stale content from an earlier run\n")
        main(["fig06", "--out", str(target)])
        first = target.read_text()
        assert "stale content" not in first
        main(["fig06", "--out", str(target)])
        assert target.read_text() == first

    def test_seed_flag_accepted(self, capsys):
        assert main(["fig06", "--seed", "7"]) == 0

    def test_fig03_quick_smoke(self, capsys):
        from repro.experiments.runner import run_experiments

        results = run_experiments(["fig03"], quick=True)
        assert len(results) == 1
        assert results[0].experiment_id == "fig03"
        assert results[0].rows  # one entry per pattern

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_verbose_and_quiet_flags_accepted(self, capsys):
        assert main(["fig06", "--verbose"]) == 0
        assert main(["fig06", "--quiet"]) == 0
        # The result table still prints in quiet mode.
        assert "min_write_interval_ms" in capsys.readouterr().out

    def test_verbose_and_quiet_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig06", "--verbose", "--quiet"])


class TestObservabilityCli:
    def test_trace_file_is_schema_valid(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        assert main(["fig06", "--trace", trace_path]) == 0
        records = list(obs.read_trace(trace_path))  # validates every record
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_finished"
        assert "experiment_started" in kinds
        assert "experiment_finished" in kinds
        finished = next(r for r in records if r["kind"] == "experiment_finished")
        assert finished["experiment"] == "fig06"
        assert finished["wall_s"] >= 0.0

    def test_trace_sink_uninstalled_after_run(self, tmp_path, capsys):
        assert obs.get_sink() is None
        main(["fig06", "--trace", str(tmp_path / "t.jsonl")])
        assert obs.get_sink() is None

    def test_metrics_snapshot_written(self, tmp_path, capsys):
        metrics_path = str(tmp_path / "m.json")
        assert main(["fig14", "--metrics", metrics_path]) == 0
        snapshot = json.loads((tmp_path / "m.json").read_text())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        # fig14 runs the MEMCON accounting model over real traces.
        assert snapshot["counters"]["memcon.tests_started"] > 0

    def test_metrics_registry_restored_after_run(self, tmp_path, capsys):
        before = obs.get_registry()
        main(["fig06", "--metrics", str(tmp_path / "m.json")])
        assert obs.get_registry() is before

    def test_manifest_written_next_to_out(self, tmp_path, capsys):
        out_path = tmp_path / "results.md"
        assert main(["fig06", "--out", str(out_path)]) == 0
        manifest = obs.load_manifest(str(tmp_path / "results.manifest.json"))
        assert manifest["experiments"] == ["fig06"]
        assert manifest["seed"] == 1
        assert manifest["quick"] is True
        assert manifest["timings"][0]["name"] == "fig06"
        assert manifest["spans"]["children"][0]["name"] == "fig06"

    def test_manifest_derived_from_metrics_path(self, tmp_path, capsys):
        assert main(["fig06", "--metrics", str(tmp_path / "m.json")]) == 0
        manifest = obs.load_manifest(str(tmp_path / "m.manifest.json"))
        assert manifest["metrics"]["counters"] is not None

    def test_manifest_explicit_path(self, tmp_path, capsys):
        target = tmp_path / "custom.json"
        assert main(["fig06", "--manifest", str(target)]) == 0
        assert obs.load_manifest(str(target))["experiments"] == ["fig06"]

    def test_no_flags_means_no_files(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fig06"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_trace_and_report_round_trip(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        manifest_path = str(tmp_path / "run.json")
        assert main(["fig06", "--trace", trace_path,
                     "--manifest", manifest_path]) == 0
        capsys.readouterr()
        from repro.obs.report import main as report_main

        assert report_main([trace_path, "--manifest", manifest_path]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "run manifest" in out
        assert "fig06" in out


class TestAnalyticsCli:
    def test_traced_run_stores_timeseries_in_manifest(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        manifest_path = str(tmp_path / "run.json")
        assert main(["fig14", "--trace", trace_path,
                     "--manifest", manifest_path]) == 0
        manifest = obs.load_manifest(manifest_path)
        timeseries = manifest["timeseries"]
        assert timeseries["window_ms"] == 1024.0
        assert timeseries["events_total"] > 0
        # fig14 runs MEMCON over real traces: test outcomes and ref
        # populations must show up in the windows.
        assert any(w["tests"]["started"] for w in timeseries["windows"])
        assert any(w["ref"] for w in timeseries["windows"])
        # The stored rollups match an offline re-aggregation of the file.
        offline = obs.aggregate_trace(
            obs.read_trace(trace_path), window_ms=1024.0
        )
        assert offline == timeseries

    def test_window_ms_flag_controls_rollup_width(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "run.json")
        assert main(["fig06", "--trace", str(tmp_path / "t.jsonl"),
                     "--manifest", manifest_path,
                     "--window-ms", "512"]) == 0
        manifest = obs.load_manifest(manifest_path)
        assert manifest["timeseries"]["window_ms"] == 512.0
        assert manifest["config"]["window_ms"] == 512.0

    def test_untraced_run_has_no_timeseries(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "run.json")
        assert main(["fig06", "--manifest", manifest_path]) == 0
        assert obs.load_manifest(manifest_path)["timeseries"] is None

    def test_live_prints_status_lines(self, tmp_path, capsys):
        # interval throttling is wall-clock; the close() summary line is
        # the deterministic part of the contract.
        assert main(["fig06", "--live"]) == 0
        err = capsys.readouterr().err
        assert "[live]" in err
        assert "tests outstanding" in err

    def test_live_without_trace_leaves_no_files(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fig06", "--live"]) == 0
        assert list(tmp_path.iterdir()) == []
        assert obs.get_sink() is None

    def test_report_timeseries_from_manifest(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        manifest_path = str(tmp_path / "run.json")
        assert main(["fig14", "--trace", trace_path,
                     "--manifest", manifest_path]) == 0
        capsys.readouterr()
        from repro.obs.report import main as report_main

        assert report_main(["--manifest", manifest_path,
                            "--timeseries"]) == 0
        out = capsys.readouterr().out
        assert "time series" in out
        assert "lo%" in out

    def test_report_timeseries_recomputed_from_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        assert main(["fig14", "--trace", trace_path]) == 0
        capsys.readouterr()
        from repro.obs.report import main as report_main

        assert report_main([trace_path, "--timeseries"]) == 0
        assert "time series" in capsys.readouterr().out

    def test_report_timeseries_needs_a_source(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "run.json")
        assert main(["fig06", "--manifest", manifest_path]) == 0
        capsys.readouterr()
        from repro.obs.report import main as report_main

        with pytest.raises(SystemExit):
            report_main(["--manifest", manifest_path, "--timeseries"])


class TestParallelCli:
    def test_nested_output_directories_created(self, tmp_path, capsys):
        out = tmp_path / "a" / "b" / "results.md"
        trace = tmp_path / "c" / "t.jsonl"
        manifest = tmp_path / "d" / "e" / "run.json"
        assert main(["fig06", "--out", str(out), "--trace", str(trace),
                     "--manifest", str(manifest)]) == 0
        assert out.exists() and trace.exists() and manifest.exists()

    def test_jobs_flag_produces_identical_table(self, tmp_path, capsys):
        serial = tmp_path / "serial.md"
        sharded = tmp_path / "sharded.md"
        assert main(["fig06", "--out", str(serial)]) == 0
        assert main(["fig06", "--jobs", "2", "--out", str(sharded),
                     "--checkpoint", str(tmp_path / "c.jsonl")]) == 0
        assert sharded.read_text() == serial.read_text()

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig06", "--jobs", "0"])

    def test_serial_manifest_has_no_workers(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main(["fig06", "--manifest", str(manifest)]) == 0
        assert obs.load_manifest(str(manifest))["workers"] is None

    def test_sharded_manifest_records_topology(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main(["fig06", "--jobs", "2", "--manifest", str(manifest),
                     "--checkpoint", str(tmp_path / "c.jsonl")]) == 0
        workers = obs.load_manifest(str(manifest))["workers"]
        assert workers["jobs"] == 2
        assert workers["stats"]["executed"] == 4
        assert sum(w["units"] for w in workers["workers"]) == 4

    def test_default_checkpoint_lands_next_to_out(self, tmp_path, capsys):
        out = tmp_path / "results.md"
        assert main(["fig06", "--jobs", "2", "--out", str(out)]) == 0
        assert (tmp_path / "results.checkpoint.jsonl").exists()

    def test_serial_run_writes_no_checkpoint(self, tmp_path, capsys,
                                             monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fig06"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_report_reads_sharded_trace_via_merge(self, tmp_path, capsys):
        shards = []
        for i in range(2):
            shard = tmp_path / f"s{i}.jsonl"
            assert main(["fig06", "--trace", str(shard),
                         "--seed", str(i + 1)]) == 0
            shards.append(str(shard))
        capsys.readouterr()
        from repro.obs.report import main as report_main

        assert report_main(shards) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        # Both shards' records are in the merged stream.
        assert " 2" in out.split("run_started")[1].splitlines()[0]


class TestProfilingCli:
    def test_profile_records_manifest_section(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main(["fig06", "--profile", "--profile-interval-ms", "1",
                     "--manifest", str(manifest)]) == 0
        profile = obs.load_manifest(str(manifest))["profile"]
        assert profile is not None
        assert profile["sample_count"] >= 0
        assert 0.0 <= profile["attributed_fraction"] <= 1.0
        assert profile["interval_s"] == pytest.approx(0.001)
        # Samples land on the runner's named spans (root "run").
        assert all(s == "(no-collector)" or s.split(";")[0] == "run"
                   for s in profile["stacks"])

    def test_profile_out_writes_collapsed_stacks(self, tmp_path, capsys):
        stacks = tmp_path / "stacks.txt"
        assert main(["fig06", "--profile",
                     "--profile-interval-ms", "1",
                     "--profile-out", str(stacks),
                     "--manifest", str(tmp_path / "run.json")]) == 0
        for line in stacks.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert int(count) > 0

    def test_unprofiled_manifest_has_no_profile(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main(["fig06", "--manifest", str(manifest)]) == 0
        assert obs.load_manifest(str(manifest))["profile"] is None

    def test_live_sharded_run_records_bus_telemetry(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main(["fig06", "--jobs", "2", "--live",
                     "--manifest", str(manifest),
                     "--checkpoint", str(tmp_path / "c.jsonl")]) == 0
        workers = obs.load_manifest(str(manifest))["workers"]
        telemetry = workers["telemetry"]
        rows = telemetry["workers"]
        assert sum(r["units_done"] for r in rows) == 4
        assert all(r["state"] in ("idle", "running") for r in rows)

    def test_serial_live_run_has_no_telemetry(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main(["fig06", "--live", "--manifest", str(manifest)]) == 0
        assert obs.load_manifest(str(manifest))["workers"] is None


class TestForensicsCli:
    """--forensics: ledger extraction, gate hygiene, and the two identity
    guarantees (tables unchanged; serial == sharded ledger)."""

    @pytest.fixture(scope="class")
    def forensic_runs(self, tmp_path_factory):
        """hammer01 three ways: plain, forensics serial, forensics --jobs 2."""
        root = tmp_path_factory.mktemp("forensics")

        def run(label, *extra):
            out = root / label / "t.md"
            manifest = root / label / "m.json"
            assert main([
                "hammer01", "--out", str(out), "--manifest", str(manifest),
                *extra,
            ]) == 0
            return out, manifest

        plain = run("plain")
        serial = run("serial", "--forensics")
        jobs = run("jobs", "--forensics", "--jobs", "2")
        return {"plain": plain, "serial": serial, "jobs": jobs}

    def test_tables_identical_with_and_without_forensics(self, forensic_runs):
        plain_out, _ = forensic_runs["plain"]
        serial_out, _ = forensic_runs["serial"]
        assert plain_out.read_bytes() == serial_out.read_bytes()

    def test_ledger_serial_vs_jobs_byte_identical(self, forensic_runs):
        serial_out, _ = forensic_runs["serial"]
        jobs_out, _ = forensic_runs["jobs"]
        serial_ledger = serial_out.parent / "t.trace.forensics.jsonl"
        jobs_ledger = jobs_out.parent / "t.trace.forensics.jsonl"
        assert serial_ledger.read_bytes() == jobs_ledger.read_bytes()
        assert serial_out.read_bytes() == jobs_out.read_bytes()

    def test_manifest_census_and_ledger_file(self, forensic_runs):
        serial_out, manifest_path = forensic_runs["serial"]
        manifest = json.loads(manifest_path.read_text())
        census = manifest["forensics"]
        assert census["records"] > 0
        assert census["kinds"].get("forensic_row", 0) > 0
        assert set(census["verdicts"]) <= {
            "content-dependent", "disturb-driven", "composed",
            "memcon-miss", "safe",
        }
        ledger = serial_out.parent / "t.trace.forensics.jsonl"
        assert str(ledger) == census["ledger_path"]
        records = list(obs.read_trace(str(ledger), validate=False))
        assert len(records) == census["records"]
        assert manifest["config"]["forensics"] is True

    def test_plain_run_has_no_forensics(self, forensic_runs):
        plain_out, manifest_path = forensic_runs["plain"]
        manifest = json.loads(manifest_path.read_text())
        assert manifest["forensics"] is None
        assert manifest["config"]["forensics"] is False
        assert not (plain_out.parent / "t.trace.forensics.jsonl").exists()

    def test_forensics_implies_trace(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["fig06", "--out", str(out), "--forensics"]) == 0
        assert (tmp_path / "r.trace.jsonl").exists()
        assert (tmp_path / "r.trace.forensics.jsonl").exists()
        assert "forensics" in capsys.readouterr().err.lower() or True

    def test_forensics_out_flag(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        ledger = tmp_path / "deep" / "l.jsonl"
        assert main([
            "fig06", "--out", str(out), "--forensics",
            "--forensics-out", str(ledger),
        ]) == 0
        assert ledger.exists()
        manifest = json.loads((tmp_path / "r.manifest.json").read_text())
        assert manifest["forensics"]["ledger_path"] == str(ledger)

    def test_gate_restored_after_run(self, tmp_path, capsys):
        assert not obs.forensics_active()
        main(["fig06", "--out", str(tmp_path / "r.md"), "--forensics"])
        assert not obs.forensics_active()
