"""Tests for the HMTT-style bus tracer."""

import pytest

from repro.testinfra.hmtt import BusEvent, BusTracer, capture_workload
from repro.traces.workloads import WORKLOADS


class TestBusTracer:
    def test_records_writes(self):
        tracer = BusTracer(total_pages=8, duration_ms=100.0)
        tracer.record(BusEvent(time_ms=1.0, page=3, is_write=True))
        tracer.record(BusEvent(time_ms=2.0, page=3, is_write=True))
        trace = tracer.finish()
        assert list(trace.writes[3]) == [1.0, 2.0]

    def test_reads_counted_not_stored(self):
        tracer = BusTracer(total_pages=8, duration_ms=100.0)
        tracer.record(BusEvent(time_ms=1.0, page=3, is_write=False))
        assert tracer.events_recorded == 1
        assert 3 not in tracer.finish().writes

    def test_warmup_events_dropped(self):
        tracer = BusTracer(total_pages=8, duration_ms=100.0, warmup_ms=10.0)
        tracer.record(BusEvent(time_ms=5.0, page=0, is_write=True))
        tracer.record(BusEvent(time_ms=15.0, page=0, is_write=True))
        trace = tracer.finish()
        assert tracer.events_dropped == 1
        assert list(trace.writes[0]) == [5.0]  # 15 ms - 10 ms warmup

    def test_post_window_events_dropped(self):
        tracer = BusTracer(total_pages=8, duration_ms=100.0)
        tracer.record(BusEvent(time_ms=150.0, page=0, is_write=True))
        assert tracer.events_dropped == 1

    def test_out_of_range_page_raises(self):
        tracer = BusTracer(total_pages=8, duration_ms=100.0)
        with pytest.raises(ValueError, match="page"):
            tracer.record(BusEvent(time_ms=1.0, page=9, is_write=True))

    def test_unsorted_arrivals_sorted_in_trace(self):
        tracer = BusTracer(total_pages=8, duration_ms=100.0)
        tracer.record(BusEvent(time_ms=9.0, page=1, is_write=True))
        tracer.record(BusEvent(time_ms=3.0, page=1, is_write=True))
        assert list(tracer.finish().writes[1]) == [3.0, 9.0]

    @pytest.mark.parametrize("kwargs", [
        {"total_pages": 0, "duration_ms": 1.0},
        {"total_pages": 1, "duration_ms": 0.0},
        {"total_pages": 1, "duration_ms": 1.0, "warmup_ms": -1.0},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            BusTracer(**kwargs)


class TestCaptureWorkload:
    def test_capture_matches_profile_shape(self):
        profile = WORKLOADS["BlurMotion"]
        trace = capture_workload(profile, seed=1)
        assert trace.total_pages == profile.n_pages
        assert trace.duration_ms == profile.duration_ms
        assert trace.n_writes > 0
        assert trace.name == profile.name

    def test_warmup_shifts_capture(self):
        profile = WORKLOADS["BlurMotion"]
        plain = capture_workload(profile, seed=1)
        warm = capture_workload(profile, seed=1, warmup_ms=1000.0)
        # Same underlying stream, different window: counts differ slightly.
        assert abs(warm.n_writes - plain.n_writes) < 0.5 * plain.n_writes
