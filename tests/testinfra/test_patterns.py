"""Tests for the canonical test data patterns."""

import numpy as np
import pytest

from repro.testinfra.patterns import (
    CANONICAL_PATTERNS,
    CHECKER_0,
    COLSTRIPE_0,
    ROWSTRIPE_0,
    SOLID_0,
    SOLID_1,
    WALKING_1,
    pattern_battery,
    pattern_by_name,
    random_pattern,
)


class TestCanonicalPatterns:
    def test_all_produce_correct_length(self):
        for pattern in CANONICAL_PATTERNS:
            assert len(pattern.row_bits(0, 128)) == 128

    def test_all_binary_valued(self):
        for pattern in CANONICAL_PATTERNS:
            bits = pattern.row_bits(3, 256)
            assert set(np.unique(bits)) <= {0, 1}

    def test_solid_values(self):
        assert SOLID_0.row_bits(0, 64).sum() == 0
        assert SOLID_1.row_bits(0, 64).sum() == 64

    def test_column_stripe_alternates(self):
        bits = COLSTRIPE_0.row_bits(0, 8)
        assert list(bits) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_row_stripe_alternates_by_row(self):
        assert ROWSTRIPE_0.row_bits(0, 4).sum() == 0
        assert ROWSTRIPE_0.row_bits(1, 4).sum() == 4

    def test_checkerboard_flips_between_rows(self):
        row0 = CHECKER_0.row_bits(0, 16)
        row1 = CHECKER_0.row_bits(1, 16)
        assert np.array_equal(row0, 1 - row1)

    def test_walking_one_density(self):
        bits = WALKING_1.row_bits(0, 90)
        assert bits.sum() == 10  # one hot bit per stride of 9

    def test_names_unique(self):
        names = [p.name for p in CANONICAL_PATTERNS]
        assert len(names) == len(set(names))


class TestRandomPatterns:
    def test_deterministic_per_seed_and_row(self):
        a = random_pattern(5).row_bits(2, 512)
        b = random_pattern(5).row_bits(2, 512)
        assert np.array_equal(a, b)

    def test_rows_differ(self):
        pattern = random_pattern(5)
        assert not np.array_equal(
            pattern.row_bits(0, 512), pattern.row_bits(1, 512)
        )

    def test_roughly_half_density(self):
        bits = random_pattern(1).row_bits(0, 4096)
        assert 0.45 < bits.mean() < 0.55


class TestBattery:
    def test_default_battery_is_100_patterns(self):
        assert len(pattern_battery()) == 100

    def test_battery_starts_with_canonical(self):
        battery = pattern_battery(n_random=5)
        assert battery[: len(CANONICAL_PATTERNS)] == CANONICAL_PATTERNS

    def test_negative_random_count_raises(self):
        with pytest.raises(ValueError):
            pattern_battery(n_random=-1)

    def test_lookup_by_name(self):
        assert pattern_by_name("checker0") is CHECKER_0

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            pattern_by_name("nope")
