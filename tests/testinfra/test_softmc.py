"""Tests for the SoftMC-style retention tester."""

import numpy as np
import pytest

from repro.testinfra.patterns import SOLID_0, random_pattern
from repro.testinfra.softmc import SoftMCTester


@pytest.fixture
def tester(dense_fault_device):
    return SoftMCTester(dense_fault_device)


class TestRetentionProtocol:
    def test_time_advances_by_interval(self, tester):
        tester.fill_pattern(SOLID_0)
        assert tester.now_ms == 0.0
        tester.run_retention_test(328.0)
        assert tester.now_ms == 328.0

    def test_report_covers_all_rows_by_default(self, tester):
        report = tester.test_pattern(SOLID_0, 328.0)
        assert report.rows_tested == tester.device.geometry.total_rows

    def test_row_subset(self, tester):
        report = tester.test_pattern(random_pattern(1), 328.0, rows=[0, 1, 2])
        assert report.rows_tested == 3
        assert all(f.row_index in (0, 1, 2) for f in report.failures)

    def test_random_content_fails_more_than_zeros(self, tester):
        zeros = tester.test_pattern(SOLID_0, 1000.0)
        random = tester.test_pattern(random_pattern(1), 1000.0)
        assert len(random.failures) > len(zeros.failures)

    def test_longer_interval_more_failures(self, tester):
        short = tester.test_pattern(random_pattern(1), 150.0)
        long = tester.test_pattern(random_pattern(1), 3000.0)
        assert len(long.failures) >= len(short.failures)
        assert len(long.failures) > 0

    def test_failures_report_expected_and_observed(self, tester):
        report = tester.test_pattern(random_pattern(2), 2000.0)
        for failure in report.failures:
            assert failure.expected != failure.observed
            assert failure.expected in (0, 1)

    def test_failing_rows_sorted_unique(self, tester):
        report = tester.test_pattern(random_pattern(2), 2000.0)
        rows = report.failing_rows
        assert rows == sorted(set(rows))

    def test_failing_row_fraction(self, tester):
        report = tester.test_pattern(random_pattern(2), 2000.0)
        assert report.failing_row_fraction == (
            len(report.failing_rows) / report.rows_tested
        )

    def test_failures_in_row_filter(self, tester):
        report = tester.test_pattern(random_pattern(2), 2000.0)
        if report.failing_rows:
            row = report.failing_rows[0]
            assert all(
                f.row_index == row for f in report.failures_in_row(row)
            )

    def test_invalid_interval_raises(self, tester):
        with pytest.raises(ValueError):
            tester.run_retention_test(0.0)


class TestContentFill:
    def test_fill_content_direct(self, tester):
        image = {0: bytes([0xFF] * 512), 5: bytes([0x0F] * 512)}
        written = tester.fill_content(image)
        assert written == [0, 5]
        assert tester.device.cells.read_row_bytes(5) == image[5]

    def test_fill_content_replicated_covers_module(self, tester):
        image = {0: bytes([0xAA] * 512), 1: bytes([0x55] * 512)}
        written = tester.fill_content(image, replicate=True)
        assert len(written) == tester.device.geometry.total_rows
        assert tester.device.cells.read_row_bytes(2) == image[0]
        assert tester.device.cells.read_row_bytes(3) == image[1]

    def test_empty_content_raises(self, tester):
        with pytest.raises(ValueError):
            tester.fill_content({})

    def test_test_content_end_to_end(self, tester):
        rng = np.random.default_rng(0)
        image = {
            i: rng.integers(0, 256, 512, dtype=np.uint8).tobytes()
            for i in range(4)
        }
        report = tester.test_content(image, 2000.0)
        assert report.rows_tested == tester.device.geometry.total_rows
        assert len(report.failures) > 0
