"""Equivalence tests: the event-heap engine vs the poll-loop oracle.

``SystemSimulator.run(engine="event")`` must be bit-identical to the
retired cycle-polling loop (``engine="poll"``, kept as the reference
implementation — the same oracle pattern the vectorised fault engine
uses): identical ``SystemResult``s and identical traced event streams
across randomized configurations. The one intentional divergence is
backpressure fairness, covered by its own regression test.
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.mc.controller import RefreshSettings, TestTrafficSettings
from repro.mc.rowrefresh import RowRefreshSettings
from repro.mc.scheduler import FrFcfsScheduler, SchedulerConfig
from repro.sim.core import CoreConfig
from repro.sim.system import SystemConfig, SystemSimulator
from repro.traces.spec import get_benchmark

BENCH_POOL = ["mcf", "tonto", "libquantum", "gcc"]


def _config(channels, tests, reduction, row_refresh):
    return SystemConfig(
        channels=channels,
        refresh=RefreshSettings(base_interval_ms=16.0, reduction=reduction),
        test_traffic=TestTrafficSettings(concurrent_tests=tests),
        row_refresh=(
            RowRefreshSettings(hi_rows=2048, lo_rows=30720)
            if row_refresh else None
        ),
    )


def _run(engine, bench_names, config, seed, window_ns, traced=False):
    """One fresh simulator run; returns (result dict, trace records)."""
    benchmarks = [get_benchmark(name) for name in bench_names]
    simulator = SystemSimulator(benchmarks, config, seed=seed)
    records = []
    if traced:
        sink = obs.ListTraceSink()
        previous = obs.set_sink(sink)
        try:
            result = simulator.run(window_ns, engine=engine)
        finally:
            obs.set_sink(previous)
        records = sink.records
    else:
        result = simulator.run(window_ns, engine=engine)
    return (
        {
            "window_ns": result.window_ns,
            "cores": [asdict(core) for core in result.cores],
            "refreshes_issued": result.refreshes_issued,
            "refresh_busy_fraction": result.refresh_busy_fraction,
            "row_hit_rate": result.row_hit_rate,
        },
        records,
    )


class TestEngineMatchesOracle:
    @settings(max_examples=12, deadline=None)
    @given(
        benches=st.lists(st.sampled_from(BENCH_POOL), min_size=1, max_size=3),
        channels=st.integers(1, 2),
        tests=st.sampled_from([0, 2]),
        reduction=st.sampled_from([0.0, 0.6]),
        row_refresh=st.booleans(),
        seed=st.integers(0, 2**16),
        window_us=st.integers(5, 20),
    )
    def test_results_identical(
        self, benches, channels, tests, reduction, row_refresh, seed, window_us
    ):
        window_ns = window_us * 1_000.0
        config = _config(channels, tests, reduction, row_refresh)
        expected, _ = _run("poll", benches, config, seed, window_ns)
        got, _ = _run("event", benches, config, seed, window_ns)
        assert got == expected

    @settings(max_examples=6, deadline=None)
    @given(
        benches=st.lists(st.sampled_from(BENCH_POOL), min_size=1, max_size=2),
        channels=st.integers(1, 2),
        tests=st.sampled_from([0, 2]),
        seed=st.integers(0, 2**16),
    )
    def test_traced_streams_identical(self, benches, channels, tests, seed):
        config = _config(channels, tests, 0.0, row_refresh=False)
        expected, expected_records = _run(
            "poll", benches, config, seed, 10_000.0, traced=True
        )
        got, got_records = _run(
            "event", benches, config, seed, 10_000.0, traced=True
        )
        assert got == expected
        assert got_records == expected_records

    @settings(max_examples=8, deadline=None)
    @given(
        benches=st.lists(st.sampled_from(BENCH_POOL), min_size=1, max_size=2),
        channels=st.integers(1, 2),
        tests=st.sampled_from([0, 2]),
        seed=st.integers(0, 2**16),
        window_us=st.integers(5, 20),
    )
    def test_activation_streams_identical(
        self, benches, channels, tests, seed, window_us
    ):
        """Both engines feed the disturbance channel the same ACT stream:
        per-row counts *and* open-interval on-times must match exactly."""
        window_ns = window_us * 1_000.0
        config = SystemConfig(
            channels=channels,
            refresh=RefreshSettings(base_interval_ms=16.0),
            test_traffic=TestTrafficSettings(concurrent_tests=tests),
            track_activations=True,
        )
        benchmarks = [get_benchmark(name) for name in benches]
        snapshots = {}
        for engine in ("poll", "event"):
            simulator = SystemSimulator(benchmarks, config, seed=seed)
            simulator.run(window_ns, engine=engine)
            snapshots[engine] = simulator.activation_snapshot(window_ns)
        assert snapshots["event"] == snapshots["poll"]

    def test_activation_stream_nonempty_and_identical_for_mcf(self):
        # Deterministic anchor for the property above: a memory-heavy
        # workload over a real window must produce a non-trivial stream.
        config = SystemConfig(
            test_traffic=TestTrafficSettings(concurrent_tests=8),
            track_activations=True,
        )
        snapshots = {}
        for engine in ("poll", "event"):
            simulator = SystemSimulator(
                [get_benchmark("mcf")], config, seed=7,
            )
            simulator.run(50_000.0, engine=engine)
            snapshots[engine] = simulator.activation_snapshot(50_000.0)
        assert snapshots["event"] == snapshots["poll"]
        assert len(snapshots["event"]) > 10
        assert any(on > 0.0 for _, on in snapshots["event"].values())

    def test_zero_request_window_identical(self):
        # A window shorter than any core's first arrival: the engines
        # must agree on a run where only refresh events exist.
        config = SystemConfig(core=CoreConfig())
        expected, _ = _run("poll", ["tonto"], config, 3, 50.0)
        got, _ = _run("event", ["tonto"], config, 3, 50.0)
        assert got == expected
        assert all(core["reads_completed"] == 0 for core in got["cores"])

    def test_unknown_engine_rejected(self):
        simulator = SystemSimulator([get_benchmark("mcf")], SystemConfig())
        with pytest.raises(ValueError):
            simulator.run(1_000.0, engine="cycle")


class TestHoldbackFairness:
    """The per-core holdback fix: backpressure must not starve cores.

    The poll loop's global ``while not holdback`` guard stopped polling
    *every* later core once one request was refused; the event engine
    gives each core its own holdback queue.
    """

    def _run_congested(self, engine):
        registry = obs.MetricsRegistry(enabled=True)
        previous = obs.set_registry(registry)
        try:
            benchmarks = [get_benchmark("mcf")] * 4
            simulator = SystemSimulator(benchmarks, SystemConfig(), seed=11)
            # Near-zero queue capacity forces refusals under 4 mcf cores.
            # (Built after set_registry: schedulers bind counters at init.)
            for controller in simulator.controllers:
                controller.scheduler = FrFcfsScheduler(SchedulerConfig(
                    write_queue_drain_threshold=2,
                    read_queue_capacity=2,
                    write_queue_capacity=2,
                ))
            result = simulator.run(100_000.0, engine=engine)
        finally:
            obs.set_registry(previous)
        rejected = registry.counter("mc.sched.rejected").value
        return result, rejected

    def test_backpressure_reaches_every_core(self):
        result, rejected = self._run_congested("event")
        assert rejected > 0, "config failed to trigger backpressure"
        # The fix's guarantee: no core is starved outright.
        for core in result.cores:
            assert core.reads_completed > 0

    def test_poll_oracle_starves_later_cores(self):
        # Documents the defect the fix removes: under the same load the
        # global-holdback loop never lets the last cores issue at all.
        event_result, _ = self._run_congested("event")
        poll_result, _ = self._run_congested("poll")
        poll_reads = [core.reads_completed for core in poll_result.cores]
        event_reads = [core.reads_completed for core in event_result.cores]
        assert min(poll_reads) == 0
        assert min(event_reads) > min(poll_reads)
