"""Tests for multi-channel system simulation."""

import pytest

from repro.sim.metrics import speedup
from repro.sim.system import SystemConfig, SystemSimulator, simulate_workload
from repro.traces.spec import get_benchmark

WINDOW_NS = 50_000.0
MIX = ["mcf", "lbm", "omnetpp", "xalancbmk"]


class TestMultiChannel:
    def test_channel_count_validated(self):
        with pytest.raises(ValueError):
            SystemConfig(channels=0)

    def test_controllers_per_channel(self):
        sim = SystemSimulator(
            [get_benchmark("mcf")], SystemConfig(channels=2),
        )
        assert len(sim.controllers) == 2
        assert sim.controller is sim.controllers[0]

    def test_requests_route_by_channel(self):
        result = simulate_workload(MIX, window_ns=WINDOW_NS, channels=2,
                                   seed=3)
        assert all(core.reads_completed > 0 for core in result.cores)

    def test_two_channels_raise_multicore_throughput(self):
        one = simulate_workload(MIX, density_gbit=32, window_ns=WINDOW_NS,
                                seed=5)
        two = simulate_workload(MIX, density_gbit=32, window_ns=WINDOW_NS,
                                channels=2, seed=5)
        assert two.mean_ipc > one.mean_ipc

    def test_single_core_insensitive_to_extra_channels(self):
        # One core with moderate MLP cannot saturate even one channel's
        # bandwidth by much; a second channel moves IPC only mildly.
        one = simulate_workload(["gcc"], window_ns=WINDOW_NS, seed=5)
        two = simulate_workload(["gcc"], window_ns=WINDOW_NS, channels=2,
                                seed=5)
        assert two.cores[0].ipc == pytest.approx(one.cores[0].ipc, rel=0.25)

    def test_refreshes_counted_across_channels(self):
        one = simulate_workload(["mcf"], window_ns=WINDOW_NS, seed=5)
        two = simulate_workload(["mcf"], window_ns=WINDOW_NS, channels=2,
                                seed=5)
        assert two.refreshes_issued == pytest.approx(
            2 * one.refreshes_issued, rel=0.05
        )

    def test_refresh_busy_fraction_is_per_channel(self):
        # Duty cycle is a property of tRFC/tREFI, independent of channels.
        one = simulate_workload(["perlbench"], density_gbit=32,
                                window_ns=WINDOW_NS, seed=5)
        two = simulate_workload(["perlbench"], density_gbit=32,
                                window_ns=WINDOW_NS, channels=2, seed=5)
        assert two.refresh_busy_fraction == pytest.approx(
            one.refresh_busy_fraction, abs=0.02
        )

    def test_test_traffic_split_across_channels(self):
        sim = SystemSimulator(
            [get_benchmark("mcf")],
            SystemConfig(channels=2),
        )
        # 0 concurrent tests by default: no injection either way.
        for controller in sim.controllers:
            assert controller.test_traffic.concurrent_tests == 0

    def test_second_channel_absorbs_test_traffic(self):
        free = simulate_workload(MIX, refresh_reduction=0.66,
                                 window_ns=WINDOW_NS, channels=2, seed=5)
        testing = simulate_workload(MIX, refresh_reduction=0.66,
                                    concurrent_tests=1024,
                                    window_ns=WINDOW_NS, channels=2, seed=5)
        loss = 1.0 - speedup(testing, free)
        assert loss < 0.01  # the paper's near-zero 4-core overhead
