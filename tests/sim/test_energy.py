"""Tests for the DRAM energy model."""

import pytest

from repro import obs
from repro.mc.controller import ControllerStats
from repro.sim.energy import (
    EnergyBreakdown,
    EnergyParameters,
    energy_of_run,
    refresh_energy_savings,
)
from repro.sim.system import simulate_workload


def _stats(**overrides):
    defaults = dict(reads_served=0, writes_served=0, test_requests_served=0,
                    total_read_latency_ns=0.0, refreshes_issued=0,
                    refresh_busy_ns=0.0, row_hits=0, row_misses=0,
                    row_conflicts=0)
    defaults.update(overrides)
    return ControllerStats(**defaults)


class TestParameters:
    def test_refresh_energy_scales_with_density(self):
        params = EnergyParameters()
        assert params.refresh_nj(16) == 2 * params.refresh_nj(8)
        assert params.refresh_nj(32) == 4 * params.refresh_nj(8)

    def test_invalid_density_raises(self):
        with pytest.raises(ValueError):
            EnergyParameters().refresh_nj(0)

    def test_negative_energy_raises(self):
        with pytest.raises(ValueError):
            EnergyParameters(activate_nj=-1.0)


class TestBreakdown:
    def test_manual_accounting(self):
        stats = _stats(row_hits=10, row_misses=5, row_conflicts=5,
                       refreshes_issued=3)
        params = EnergyParameters(activate_nj=2.0, read_nj=1.0,
                                  refresh_nj_8gb=100.0, background_w=0.0)
        breakdown = energy_of_run(stats, window_ns=1000.0, params=params)
        assert breakdown.activate_nj == 20.0      # 10 activations
        assert breakdown.read_write_nj == 20.0    # 20 column accesses
        assert breakdown.refresh_nj == 300.0
        assert breakdown.total_nj == 340.0

    def test_background_scales_with_window(self):
        params = EnergyParameters(background_w=0.5)
        short = energy_of_run(_stats(), 1000.0, params=params)
        long = energy_of_run(_stats(), 2000.0, params=params)
        assert long.background_nj == 2 * short.background_nj

    def test_refresh_fraction(self):
        stats = _stats(refreshes_issued=10)
        params = EnergyParameters(background_w=0.0, refresh_nj_8gb=10.0)
        breakdown = energy_of_run(stats, 1000.0, params=params)
        assert breakdown.refresh_fraction == 1.0

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            energy_of_run(_stats(), 0.0)


class TestSavings:
    def test_savings_formula(self):
        params = EnergyParameters(refresh_nj_8gb=100.0)
        assert refresh_energy_savings(100, 25, density_gbit=8,
                                      params=params) == 7500.0

    def test_denser_chips_save_more(self):
        assert refresh_energy_savings(100, 25, density_gbit=32) == 4 * (
            refresh_energy_savings(100, 25, density_gbit=8)
        )

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            refresh_energy_savings(-1, 0)


class TestEnergyRollupEvents:
    def test_rollup_emitted_with_pj_fields(self):
        sink = obs.ListTraceSink()
        previous = obs.set_sink(sink)
        try:
            params = EnergyParameters(
                activate_nj=2.0, read_nj=1.0, write_nj=1.0,
                refresh_nj_8gb=100.0, background_w=0.5,
            )
            stats = _stats(row_hits=3, row_misses=2, refreshes_issued=4)
            breakdown = energy_of_run(stats, 1_000.0, params=params,
                                      channel=1)
        finally:
            obs.set_sink(previous)
        (record,) = sink.records
        obs.validate_record(record)
        assert record["kind"] == "energy_rollup"
        assert record["window_ns"] == 1_000.0
        assert record["channel"] == 1
        # pJ fields are the nJ breakdown times 1e3.
        assert record["refresh_pj"] == pytest.approx(
            breakdown.refresh_nj * 1e3)
        assert record["access_pj"] == pytest.approx(
            (breakdown.activate_nj + breakdown.read_write_nj) * 1e3)
        assert record["background_pj"] == pytest.approx(
            breakdown.background_nj * 1e3)

    def test_channel_omitted_when_unset(self):
        sink = obs.ListTraceSink()
        previous = obs.set_sink(sink)
        try:
            energy_of_run(_stats(), 1_000.0)
        finally:
            obs.set_sink(previous)
        assert "channel" not in sink.records[0]

    def test_no_sink_no_event(self):
        previous = obs.set_sink(None)
        try:
            energy_of_run(_stats(), 1_000.0)  # must not raise
        finally:
            obs.set_sink(previous)

    def test_system_run_emits_one_rollup_per_channel(self):
        sink = obs.ListTraceSink()
        previous = obs.set_sink(sink)
        try:
            simulate_workload(["mcf"], window_ns=100_000.0, channels=2)
        finally:
            obs.set_sink(previous)
        rollups = [r for r in sink.records if r["kind"] == "energy_rollup"]
        assert sorted(r["channel"] for r in rollups) == [0, 1]
        assert all(r["refresh_pj"] > 0 for r in rollups)


class TestEndToEnd:
    def test_reduction_cuts_refresh_energy(self):
        window = 50_000.0
        base = simulate_workload(["mcf"], density_gbit=32,
                                 window_ns=window, seed=2)
        reduced = simulate_workload(["mcf"], density_gbit=32,
                                    refresh_reduction=0.75,
                                    window_ns=window, seed=2)
        saved = refresh_energy_savings(
            base.refreshes_issued, reduced.refreshes_issued,
            density_gbit=32,
        )
        assert saved > 0
        assert reduced.refreshes_issued < 0.3 * base.refreshes_issued
