"""Unit tests for the event heap backing the simulator's main loop."""

import pytest

from repro.sim.events import EventHeap


class TestEventHeap:
    def test_push_and_current(self):
        heap = EventHeap()
        heap.push("a", 5.0)
        assert heap.current("a") == 5.0
        assert heap.current("b") is None

    def test_repush_supersedes(self):
        heap = EventHeap()
        heap.push("a", 5.0)
        heap.push("a", 2.0)
        assert heap.current("a") == 2.0
        assert heap.next_time(99.0) == 2.0
        # The stale 5.0 entry must not resurface after the live one
        # is consumed.
        assert heap.prune_due(2.0) == ["a"]
        assert heap.next_time(99.0) == 99.0

    def test_prune_due_consumes_only_due(self):
        heap = EventHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.push("c", 1.0)
        due = heap.prune_due(1.0)
        assert sorted(due) == ["a", "c"]
        assert heap.current("a") is None
        assert heap.current("b") == 2.0
        assert heap.next_time(99.0) == 2.0

    def test_invalidate(self):
        heap = EventHeap()
        heap.push("a", 1.0)
        heap.push("b", 3.0)
        heap.invalidate("a")
        assert heap.current("a") is None
        assert heap.prune_due(1.0) == []
        assert heap.next_time(99.0) == 3.0
        heap.invalidate("missing")  # no-op, not an error

    def test_next_time_default_when_empty(self):
        heap = EventHeap()
        assert heap.next_time(7.0) == 7.0

    def test_interleaved_updates_keep_order(self):
        heap = EventHeap()
        for i in range(10):
            heap.push(i, float(10 - i))
        for i in range(0, 10, 2):
            heap.push(i, float(i))  # move the even actors earlier
        seen = []
        now = 0.0
        while heap.next_time(float("inf")) != float("inf"):
            now = heap.next_time(now)
            seen.extend((now, a) for a in heap.prune_due(now))
        assert seen == sorted(seen)
        assert len(seen) == 10


class TestArrivalSchedule:
    def test_matches_incremental_accumulation(self):
        from repro.mc.schedule import ArrivalSchedule

        schedule = ArrivalSchedule(first=0.3, interval=0.7, chunk=4)
        expected = []
        t = 0.3
        for _ in range(20):
            expected.append(t)
            t += 0.7  # the historical next += interval accumulation
        got = [schedule.next_ns]
        for _ in range(19):
            got.append(schedule.advance())
        # Bitwise equality, not approximate: experiment tables are gated
        # on byte-identical output and rounding differences would leak.
        assert got == expected

    def test_peek_does_not_consume(self):
        from repro.mc.schedule import ArrivalSchedule

        schedule = ArrivalSchedule(first=1.0, interval=2.0, chunk=2)
        ahead = schedule.peek(7)
        assert len(ahead) == 7
        assert schedule.next_ns == 1.0
        assert ahead[0] == 1.0

    def test_rejects_bad_parameters(self):
        from repro.mc.schedule import ArrivalSchedule

        with pytest.raises(ValueError):
            ArrivalSchedule(first=0.0, interval=0.0)
        with pytest.raises(ValueError):
            ArrivalSchedule(first=0.0, interval=1.0, chunk=0)
