"""Tests for the trace-driven CPU core model."""

import pytest

from repro.mc.request import Request, RequestKind
from repro.sim.core import CoreConfig, TraceCore
from repro.traces.spec import BenchmarkProfile, get_benchmark
from repro.traces.content import ContentProfile


def _bench(mpki, row_hit_rate=0.5, write_fraction=0.0):
    return BenchmarkProfile(
        name="synthetic", suite="spec",
        content=ContentProfile("synthetic", {"zero": 1.0}),
        mpki=mpki, row_hit_rate=row_hit_rate, write_fraction=write_fraction,
    )


class TestComputeBound:
    def test_zero_mpki_never_issues(self):
        core = TraceCore(0, _bench(mpki=0.0))
        assert core.next_request(1e9) is None

    def test_zero_mpki_ipc_is_peak(self):
        core = TraceCore(0, _bench(mpki=0.0))
        core.next_request(1000.0)
        # No memory requests: the core would retire at peak width, but
        # retirement is only accounted at request issue; instead verify
        # the hint is None (nothing to wait for).
        assert core.next_arrival_hint(0.0) is None


class TestRequestGeneration:
    def test_requests_spaced_by_misses(self):
        core = TraceCore(0, _bench(mpki=10.0), seed=1)
        requests = []
        now = 0.0
        while len(requests) < 50:
            now += 10.0
            request = core.next_request(now)
            if request is not None:
                requests.append(request)
                core.complete_read(request, request.arrival_ns + 100.0)
        gaps_inst = core.instructions_retired / len(requests)
        assert gaps_inst == pytest.approx(100.0, rel=0.3)

    def test_row_locality_repeats_location(self):
        core = TraceCore(0, _bench(mpki=100.0, row_hit_rate=1.0), seed=2)
        seen = set()
        now = 0.0
        for _ in range(20):
            now += 100.0
            request = core.next_request(now)
            if request is None:
                continue
            seen.add((request.bank, request.row))
            if request.kind is RequestKind.READ:
                core.complete_read(request, now)
        assert len(seen) == 1

    def test_write_fraction_respected(self):
        core = TraceCore(0, _bench(mpki=100.0, write_fraction=1.0), seed=3)
        request = core.next_request(1e6)
        assert request.kind is RequestKind.WRITE

    def test_writes_do_not_occupy_window(self):
        core = TraceCore(0, _bench(mpki=1000.0, write_fraction=1.0), seed=4)
        for _ in range(50):
            request = core.next_request(1e9)
            assert request is not None
        assert core.outstanding == 0


class TestStalling:
    def test_window_fills_and_blocks(self):
        config = CoreConfig(max_outstanding=2)
        core = TraceCore(0, _bench(mpki=1000.0), config=config, seed=5)
        first = core.next_request(1e9)
        second = core.next_request(1e9)
        assert first is not None and second is not None
        assert core.next_request(1e9) is None
        assert core.stalled

    def test_completion_unblocks_and_accrues_stall(self):
        config = CoreConfig(max_outstanding=1)
        core = TraceCore(0, _bench(mpki=1000.0), config=config, seed=6)
        request = core.next_request(1e9)
        assert core.next_request(1e9) is None
        core.complete_read(request, request.arrival_ns + 500.0)
        assert core.stall_ns == pytest.approx(500.0)
        assert core.next_request(1e9) is not None

    def test_stall_delays_next_issue(self):
        config = CoreConfig(max_outstanding=1)
        core = TraceCore(0, _bench(mpki=1000.0), config=config, seed=7)
        request = core.next_request(1e9)
        core.complete_read(request, request.arrival_ns + 500.0)
        hint = core.next_arrival_hint(0.0)
        assert hint >= request.arrival_ns + 500.0

    def test_completion_for_other_core_raises(self):
        core = TraceCore(0, _bench(mpki=10.0), seed=8)
        foreign = Request(kind=RequestKind.READ, core=1, bank=0, row=0,
                          arrival_ns=0.0)
        with pytest.raises(ValueError):
            core.complete_read(foreign, 10.0)

    def test_completion_without_outstanding_raises(self):
        core = TraceCore(0, _bench(mpki=10.0), seed=9)
        own = Request(kind=RequestKind.READ, core=0, bank=0, row=0,
                      arrival_ns=0.0)
        with pytest.raises(RuntimeError):
            core.complete_read(own, 10.0)


class TestIpc:
    def test_ipc_formula(self):
        core = TraceCore(0, _bench(mpki=10.0), seed=10)
        core.instructions_retired = 8000.0
        # 1000 ns at 4 GHz = 4000 cycles.
        assert core.ipc(1000.0) == pytest.approx(2.0)

    def test_invalid_elapsed_raises(self):
        core = TraceCore(0, _bench(mpki=10.0))
        with pytest.raises(ValueError):
            core.ipc(0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(width=0)
