"""Integration tests for the full-system performance simulator."""

import pytest

from repro.mc.controller import RefreshSettings, TestTrafficSettings
from repro.sim.system import (
    SystemConfig,
    SystemSimulator,
    simulate_workload,
)
from repro.sim.metrics import speedup
from repro.traces.spec import get_benchmark

WINDOW_NS = 60_000.0


class TestBasicRuns:
    def test_single_core_runs(self):
        result = simulate_workload(["mcf"], window_ns=WINDOW_NS, seed=1)
        assert len(result.cores) == 1
        assert result.cores[0].ipc > 0
        assert result.cores[0].reads_completed > 0

    def test_four_core_runs(self):
        result = simulate_workload(
            ["mcf", "lbm", "gcc", "omnetpp"], window_ns=WINDOW_NS, seed=1,
        )
        assert len(result.cores) == 4
        assert all(core.ipc > 0 for core in result.cores)

    def test_deterministic_for_seed(self):
        a = simulate_workload(["mcf"], window_ns=WINDOW_NS, seed=4)
        b = simulate_workload(["mcf"], window_ns=WINDOW_NS, seed=4)
        assert a.cores[0].ipc == b.cores[0].ipc

    def test_compute_bound_core_at_peak_ipc(self):
        result = simulate_workload(["perlbench"], window_ns=WINDOW_NS, seed=1)
        # perlbench (MPKI 1.1) barely touches memory: IPC near 4-wide peak.
        assert result.cores[0].ipc > 3.5

    def test_memory_bound_core_below_peak(self):
        result = simulate_workload(["mcf"], window_ns=WINDOW_NS, seed=1)
        assert result.cores[0].ipc < 1.5


class TestRefreshEffects:
    def test_refresh_busy_fraction_matches_duty_cycle(self):
        result = simulate_workload(["perlbench"], density_gbit=32,
                                   window_ns=WINDOW_NS, seed=1)
        # tRFC / tREFI = 890 / 1953 = 45.6%.
        assert result.refresh_busy_fraction == pytest.approx(0.456, abs=0.02)

    def test_reduction_lowers_busy_fraction(self):
        base = simulate_workload(["mcf"], density_gbit=32,
                                 window_ns=WINDOW_NS, seed=1)
        reduced = simulate_workload(["mcf"], density_gbit=32,
                                    refresh_reduction=0.75,
                                    window_ns=WINDOW_NS, seed=1)
        assert reduced.refresh_busy_fraction == pytest.approx(
            base.refresh_busy_fraction / 4.0, rel=0.1,
        )

    def test_memory_bound_speedup_from_reduction(self):
        base = simulate_workload(["mcf"], density_gbit=32,
                                 window_ns=WINDOW_NS, seed=1)
        memcon = simulate_workload(["mcf"], density_gbit=32,
                                   refresh_reduction=0.75,
                                   window_ns=WINDOW_NS, seed=1)
        assert speedup(memcon, base) > 1.2

    def test_compute_bound_insensitive_to_refresh(self):
        base = simulate_workload(["perlbench"], density_gbit=32,
                                 window_ns=WINDOW_NS, seed=1)
        memcon = simulate_workload(["perlbench"], density_gbit=32,
                                   refresh_reduction=0.75,
                                   window_ns=WINDOW_NS, seed=1)
        assert speedup(memcon, base) == pytest.approx(1.0, abs=0.15)

    def test_speedup_grows_with_density(self):
        speedups = {}
        for density in (8, 32):
            base = simulate_workload(["mcf"], density_gbit=density,
                                     window_ns=WINDOW_NS, seed=1)
            memcon = simulate_workload(["mcf"], density_gbit=density,
                                       refresh_reduction=0.75,
                                       window_ns=WINDOW_NS, seed=1)
            speedups[density] = speedup(memcon, base)
        assert speedups[32] > speedups[8]


class TestTestTraffic:
    def test_tests_conserved_across_channels(self):
        # 10 tests over 3 channels used to floor-divide to 3+3+3 and drop
        # one; the remainder now lands on the leading channels.
        config = SystemConfig(
            channels=3,
            test_traffic=TestTrafficSettings(concurrent_tests=10),
        )
        sim = SystemSimulator([get_benchmark("mcf")], config)
        per_channel = [
            c.test_traffic.concurrent_tests for c in sim.controllers
        ]
        assert sum(per_channel) == 10
        assert per_channel == [4, 3, 3]

    def test_even_split_unchanged(self):
        config = SystemConfig(
            channels=2,
            test_traffic=TestTrafficSettings(concurrent_tests=8),
        )
        sim = SystemSimulator([get_benchmark("mcf")], config)
        assert [
            c.test_traffic.concurrent_tests for c in sim.controllers
        ] == [4, 4]

    def test_testing_slows_down_slightly(self):
        free = simulate_workload(["mcf"], refresh_reduction=0.66,
                                 concurrent_tests=0,
                                 window_ns=WINDOW_NS, seed=1)
        testing = simulate_workload(["mcf"], refresh_reduction=0.66,
                                    concurrent_tests=1024,
                                    window_ns=WINDOW_NS, seed=1)
        ratio = speedup(testing, free)
        assert 0.9 < ratio <= 1.01


class TestResultApi:
    def test_row_hit_rate_bounded(self):
        result = simulate_workload(["lbm"], window_ns=WINDOW_NS, seed=1)
        assert 0.0 <= result.row_hit_rate <= 1.0

    def test_weighted_speedup_identity(self):
        result = simulate_workload(["mcf", "lbm"], window_ns=WINDOW_NS,
                                   seed=1)
        assert result.weighted_speedup_vs(result) == pytest.approx(2.0)

    def test_zero_ipc_baseline_rejected(self):
        # A dead baseline core used to be skipped silently, shrinking the
        # weighted sum and understating every comparison against it.
        result = simulate_workload(["mcf", "lbm"], window_ns=WINDOW_NS,
                                   seed=1)
        broken = simulate_workload(["mcf", "lbm"], window_ns=WINDOW_NS,
                                   seed=1)
        broken.cores[1].ipc = 0.0
        with pytest.raises(ValueError, match="zero IPC"):
            result.weighted_speedup_vs(broken)

    def test_mismatched_core_counts_raise(self):
        one = simulate_workload(["mcf"], window_ns=WINDOW_NS, seed=1)
        two = simulate_workload(["mcf", "lbm"], window_ns=WINDOW_NS, seed=1)
        with pytest.raises(ValueError):
            two.weighted_speedup_vs(one)

    def test_empty_benchmarks_raise(self):
        with pytest.raises(ValueError):
            SystemSimulator([], SystemConfig())

    def test_invalid_window_raises(self):
        sim = SystemSimulator([get_benchmark("mcf")], SystemConfig())
        with pytest.raises(ValueError):
            sim.run(0.0)
