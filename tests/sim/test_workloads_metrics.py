"""Tests for workload mixes and performance metrics."""

import pytest

from repro.sim.metrics import geometric_mean, harmonic_mean
from repro.sim.workloads import multicore_mixes, singlecore_workloads
from repro.traces.spec import BENCHMARKS


class TestMixes:
    def test_default_shape(self):
        mixes = multicore_mixes()
        assert len(mixes) == 30
        assert all(len(mix) == 4 for mix in mixes)

    def test_no_duplicates_within_mix(self):
        for mix in multicore_mixes():
            assert len(set(mix)) == 4

    def test_all_names_valid(self):
        for mix in multicore_mixes():
            assert all(name in BENCHMARKS for name in mix)

    def test_deterministic_per_seed(self):
        assert multicore_mixes(seed=5) == multicore_mixes(seed=5)
        assert multicore_mixes(seed=5) != multicore_mixes(seed=6)

    def test_singlecore_shape(self):
        workloads = singlecore_workloads(10)
        assert len(workloads) == 10
        assert all(len(w) == 1 for w in workloads)

    def test_singlecore_cycles_through_pool(self):
        workloads = singlecore_workloads(30)
        names = [w[0] for w in workloads]
        assert len(set(names)) == 22  # full pool before repeating

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError):
            multicore_mixes(0)
        with pytest.raises(ValueError):
            singlecore_workloads(0)


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_single(self):
        assert geometric_mean([3.0]) == 3.0

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_harmonic_below_geometric(self):
        values = [1.1, 1.5, 2.0]
        assert harmonic_mean(values) < geometric_mean(values)

    @pytest.mark.parametrize("fn", [geometric_mean, harmonic_mean])
    def test_empty_raises(self, fn):
        with pytest.raises(ValueError):
            fn([])

    @pytest.mark.parametrize("fn", [geometric_mean, harmonic_mean])
    def test_non_positive_raises(self, fn):
        with pytest.raises(ValueError):
            fn([1.0, 0.0])

    def test_geometric_mean_many_large_values_no_overflow(self):
        # A running product of these overflows float64 after ~16 terms;
        # the log-sum formulation must return the exact mean anyway.
        values = [1e20] * 1000
        assert geometric_mean(values) == pytest.approx(1e20, rel=1e-12)

    def test_geometric_mean_many_tiny_values_no_underflow(self):
        values = [1e-20] * 1000
        assert geometric_mean(values) == pytest.approx(1e-20, rel=1e-12)

    def test_geometric_mean_mixed_large_speedups(self):
        # 500 speedups of 100x and 500 of 0.01x cancel to exactly 1.0.
        values = [100.0] * 500 + [0.01] * 500
        assert geometric_mean(values) == pytest.approx(1.0, rel=1e-9)
