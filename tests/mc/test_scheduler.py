"""Tests for FR-FCFS scheduling."""

import pytest

from repro.mc.bank import BankState
from repro.mc.request import Request, RequestKind
from repro.mc.scheduler import FrFcfsScheduler, SchedulerConfig


def _req(kind=RequestKind.READ, bank=0, row=0, arrival=0.0, core=0):
    return Request(kind=kind, core=core, bank=bank, row=row,
                   arrival_ns=arrival)


def _banks(n=4, open_rows=()):
    banks = [BankState() for _ in range(n)]
    for bank, row in open_rows:
        banks[bank].open_row = row
    return banks


class TestPriorities:
    def test_reads_before_writes(self):
        sched = FrFcfsScheduler()
        sched.enqueue(_req(RequestKind.WRITE, row=1))
        sched.enqueue(_req(RequestKind.READ, row=2))
        choice = sched.next_request(_banks(), now_ns=0.0)
        assert choice.kind is RequestKind.READ

    def test_writes_served_when_no_reads(self):
        sched = FrFcfsScheduler()
        sched.enqueue(_req(RequestKind.WRITE, row=1))
        choice = sched.next_request(_banks(), now_ns=0.0)
        assert choice.kind is RequestKind.WRITE

    def test_test_traffic_is_lowest_priority(self):
        sched = FrFcfsScheduler()
        sched.enqueue(_req(RequestKind.TEST, row=3))
        sched.enqueue(_req(RequestKind.WRITE, row=1))
        sched.enqueue(_req(RequestKind.READ, row=2))
        kinds = [
            sched.next_request(_banks(), now_ns=0.0).kind for _ in range(3)
        ]
        assert kinds == [RequestKind.READ, RequestKind.WRITE,
                         RequestKind.TEST]

    def test_write_drain_at_high_water_mark(self):
        config = SchedulerConfig(write_queue_drain_threshold=2)
        sched = FrFcfsScheduler(config)
        sched.enqueue(_req(RequestKind.READ, row=9))
        sched.enqueue(_req(RequestKind.WRITE, row=1))
        sched.enqueue(_req(RequestKind.WRITE, row=2))
        # Threshold reached: writes drain ahead of the read.
        assert sched.next_request(_banks(), 0.0).kind is RequestKind.WRITE


class TestFrFcfs:
    def test_row_hit_preferred_over_older(self):
        sched = FrFcfsScheduler()
        sched.enqueue(_req(bank=0, row=1, arrival=0.0))
        sched.enqueue(_req(bank=0, row=7, arrival=1.0))
        banks = _banks(open_rows=[(0, 7)])
        assert sched.next_request(banks, now_ns=10.0).row == 7

    def test_fcfs_without_hits(self):
        sched = FrFcfsScheduler()
        sched.enqueue(_req(bank=0, row=1, arrival=0.0))
        sched.enqueue(_req(bank=0, row=2, arrival=1.0))
        assert sched.next_request(_banks(), now_ns=10.0).row == 1

    def test_busy_bank_not_eligible(self):
        sched = FrFcfsScheduler()
        sched.enqueue(_req(bank=0, row=1))
        banks = _banks()
        banks[0].ready_ns = 100.0
        assert sched.next_request(banks, now_ns=50.0) is None
        assert sched.next_request(banks, now_ns=100.0) is not None

    def test_future_arrival_not_eligible(self):
        sched = FrFcfsScheduler()
        sched.enqueue(_req(bank=0, row=1, arrival=500.0))
        assert sched.next_request(_banks(), now_ns=100.0) is None

    def test_earliest_issue_accounts_bank_and_arrival(self):
        sched = FrFcfsScheduler()
        sched.enqueue(_req(bank=0, row=1, arrival=500.0))
        sched.enqueue(_req(bank=1, row=2, arrival=0.0))
        banks = _banks()
        banks[1].ready_ns = 300.0
        assert sched.earliest_issue_ns(banks, floor_ns=0.0) == 300.0

    def test_earliest_issue_none_when_empty(self):
        sched = FrFcfsScheduler()
        assert sched.earliest_issue_ns(_banks(), floor_ns=0.0) is None


class TestCapacity:
    def test_read_queue_capacity(self):
        config = SchedulerConfig(read_queue_capacity=2)
        sched = FrFcfsScheduler(config)
        assert sched.enqueue(_req(row=1))
        assert sched.enqueue(_req(row=2))
        assert not sched.enqueue(_req(row=3))

    def test_test_queue_unbounded(self):
        sched = FrFcfsScheduler(SchedulerConfig(read_queue_capacity=1))
        for i in range(10):
            assert sched.enqueue(_req(RequestKind.TEST, row=i))

    def test_pending_counts_all_queues(self):
        sched = FrFcfsScheduler()
        sched.enqueue(_req(RequestKind.READ))
        sched.enqueue(_req(RequestKind.WRITE))
        sched.enqueue(_req(RequestKind.TEST))
        assert sched.pending == 3
