"""Tests for bank/rank timing state machines."""

import pytest

from repro.dram.timing import DDR3_1600
from repro.mc.bank import BankState, RankState, issue_refresh, service_request

T = DDR3_1600
BURST_NS = T.burst_cycles * T.tCK


class TestServiceRequest:
    def test_row_miss_pays_activation(self):
        bank, rank = BankState(), RankState()
        done = service_request(bank, rank, row=5, now_ns=0.0, timing=T)
        assert done == pytest.approx(T.tRCD + T.tCAS + BURST_NS)
        assert bank.open_row == 5
        assert bank.row_misses == 1

    def test_row_hit_skips_activation(self):
        bank, rank = BankState(open_row=5), RankState()
        done = service_request(bank, rank, row=5, now_ns=0.0, timing=T)
        assert done == pytest.approx(T.tCAS + BURST_NS)
        assert bank.row_hits == 1

    def test_row_conflict_pays_precharge_and_activate(self):
        bank, rank = BankState(open_row=3), RankState()
        done = service_request(bank, rank, row=5, now_ns=0.0, timing=T)
        assert done == pytest.approx(T.tRP + T.tRCD + T.tCAS + BURST_NS)
        assert bank.row_conflicts == 1
        assert bank.open_row == 5

    def test_bus_serialises_bursts(self):
        rank = RankState()
        bank_a, bank_b = BankState(open_row=1), BankState(open_row=2)
        done_a = service_request(bank_a, rank, row=1, now_ns=0.0, timing=T)
        done_b = service_request(bank_b, rank, row=2, now_ns=0.0, timing=T)
        # Second burst cannot start before the first releases the bus.
        assert done_b >= done_a

    def test_refresh_blocks_start(self):
        bank = BankState(open_row=1)
        rank = RankState(refresh_until_ns=500.0)
        done = service_request(bank, rank, row=1, now_ns=0.0, timing=T)
        assert done >= 500.0 + T.tCAS

    def test_hit_miss_conflict_counters_disjoint(self):
        bank, rank = BankState(), RankState()
        service_request(bank, rank, row=1, now_ns=0.0, timing=T)      # miss
        service_request(bank, rank, row=1, now_ns=1000.0, timing=T)   # hit
        service_request(bank, rank, row=2, now_ns=2000.0, timing=T)   # conflict
        assert (bank.row_misses, bank.row_hits, bank.row_conflicts) == (1, 1, 1)


class TestRefresh:
    def test_refresh_blocks_all_banks(self):
        rank = RankState()
        banks = [BankState(open_row=1), BankState(open_row=2)]
        end = issue_refresh(rank, banks, now_ns=100.0, timing=T)
        assert end == 100.0 + T.tRFC
        assert rank.refresh_until_ns == end
        for bank in banks:
            assert bank.open_row is None
            assert bank.ready_ns >= end

    def test_refresh_statistics(self):
        rank = RankState()
        issue_refresh(rank, [BankState()], now_ns=0.0, timing=T)
        issue_refresh(rank, [BankState()], now_ns=2000.0, timing=T)
        assert rank.refreshes_issued == 2
        assert rank.refresh_busy_ns == 2 * T.tRFC
