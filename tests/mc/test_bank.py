"""Tests for bank/rank timing state machines."""

import pytest

from repro.dram.timing import DDR3_1600
from repro.mc.bank import (
    BankActivationLog,
    BankState,
    RankState,
    issue_refresh,
    service_request,
)

T = DDR3_1600
BURST_NS = T.burst_cycles * T.tCK


class TestServiceRequest:
    def test_row_miss_pays_activation(self):
        bank, rank = BankState(), RankState()
        done = service_request(bank, rank, row=5, now_ns=0.0, timing=T)
        assert done == pytest.approx(T.tRCD + T.tCAS + BURST_NS)
        assert bank.open_row == 5
        assert bank.row_misses == 1

    def test_row_hit_skips_activation(self):
        bank, rank = BankState(open_row=5), RankState()
        done = service_request(bank, rank, row=5, now_ns=0.0, timing=T)
        assert done == pytest.approx(T.tCAS + BURST_NS)
        assert bank.row_hits == 1

    def test_row_conflict_pays_precharge_and_activate(self):
        bank, rank = BankState(open_row=3), RankState()
        done = service_request(bank, rank, row=5, now_ns=0.0, timing=T)
        assert done == pytest.approx(T.tRP + T.tRCD + T.tCAS + BURST_NS)
        assert bank.row_conflicts == 1
        assert bank.open_row == 5

    def test_bus_serialises_bursts(self):
        rank = RankState()
        bank_a, bank_b = BankState(open_row=1), BankState(open_row=2)
        done_a = service_request(bank_a, rank, row=1, now_ns=0.0, timing=T)
        done_b = service_request(bank_b, rank, row=2, now_ns=0.0, timing=T)
        # Second burst cannot start before the first releases the bus.
        assert done_b >= done_a

    def test_refresh_blocks_start(self):
        bank = BankState(open_row=1)
        rank = RankState(refresh_until_ns=500.0)
        done = service_request(bank, rank, row=1, now_ns=0.0, timing=T)
        assert done >= 500.0 + T.tCAS

    def test_hit_miss_conflict_counters_disjoint(self):
        bank, rank = BankState(), RankState()
        service_request(bank, rank, row=1, now_ns=0.0, timing=T)      # miss
        service_request(bank, rank, row=1, now_ns=1000.0, timing=T)   # hit
        service_request(bank, rank, row=2, now_ns=2000.0, timing=T)   # conflict
        assert (bank.row_misses, bank.row_hits, bank.row_conflicts) == (1, 1, 1)

    def test_activation_accounting_invariant(self):
        """Regression pin for the ACT bookkeeping across all three branches.

        A hit issues no ACT/PRE, a miss exactly one ACT, a conflict
        exactly one PRE + one ACT — so after any request mix,
        ``activations == row_misses + row_conflicts`` and
        ``precharges == row_conflicts`` (REF-side precharges are rank
        bookkeeping, not bank counters).
        """
        bank, rank = BankState(), RankState()
        t = 0.0
        for row in (1, 1, 2, 3, 3, 3, 1, 2):  # miss,hit,conf,conf,hit,hit,...
            service_request(bank, rank, row=row, now_ns=t, timing=T)
            assert bank.activations == bank.row_misses + bank.row_conflicts
            assert bank.precharges == bank.row_conflicts
            t += 1000.0
        assert bank.activations == 5  # 1 miss + 4 conflicts
        assert bank.row_hits == 3


class TestRefresh:
    def test_refresh_blocks_all_banks(self):
        rank = RankState()
        banks = [BankState(open_row=1), BankState(open_row=2)]
        end = issue_refresh(rank, banks, now_ns=100.0, timing=T)
        assert end == 100.0 + T.tRFC
        assert rank.refresh_until_ns == end
        for bank in banks:
            assert bank.open_row is None
            assert bank.ready_ns >= end

    def test_refresh_statistics(self):
        rank = RankState()
        issue_refresh(rank, [BankState()], now_ns=0.0, timing=T)
        issue_refresh(rank, [BankState()], now_ns=2000.0, timing=T)
        assert rank.refreshes_issued == 2
        assert rank.refresh_busy_ns == 2 * T.tRFC


class TestActivationLog:
    def test_untracked_bank_has_no_log(self):
        assert BankState().act_log is None

    def test_miss_records_one_act(self):
        bank = BankState(act_log=BankActivationLog())
        rank = RankState()
        service_request(bank, rank, row=7, now_ns=0.0, timing=T)
        assert bank.act_log.counts == {7: 1}
        assert bank.act_log.open_row == 7

    def test_hit_records_nothing(self):
        bank = BankState(act_log=BankActivationLog())
        rank = RankState()
        service_request(bank, rank, row=7, now_ns=0.0, timing=T)
        service_request(bank, rank, row=7, now_ns=1000.0, timing=T)
        assert bank.act_log.counts == {7: 1}

    def test_conflict_closes_old_row_and_acts_new(self):
        bank = BankState(act_log=BankActivationLog())
        rank = RankState()
        service_request(bank, rank, row=7, now_ns=0.0, timing=T)
        service_request(bank, rank, row=9, now_ns=5000.0, timing=T)
        log = bank.act_log
        assert log.counts == {7: 1, 9: 1}
        # Row 7 was open from its ACT at t=0 until the PRE at t=5000.
        assert log.on_ns[7] == pytest.approx(5000.0)
        # Row 9's ACT issues one tRP after the PRE.
        assert log.open_row == 9
        assert log.open_since_ns == pytest.approx(5000.0 + T.tRP)

    def test_refresh_closes_interval_but_keeps_counts(self):
        bank = BankState(act_log=BankActivationLog())
        rank = RankState()
        service_request(bank, rank, row=3, now_ns=0.0, timing=T)
        issue_refresh(rank, [bank], now_ns=4000.0, timing=T)
        assert bank.act_log.open_row is None
        assert bank.act_log.counts == {3: 1}
        assert bank.act_log.on_ns[3] == pytest.approx(4000.0)

    def test_snapshot_virtually_closes_open_interval(self):
        log = BankActivationLog()
        log.activate(5, 100.0)
        counts, on_ns = log.snapshot(600.0)
        assert counts == {5: 1}
        assert on_ns[5] == pytest.approx(500.0)
        # The snapshot did not mutate the live log.
        assert log.open_row == 5
        assert log.on_ns == {}

    def test_reset_row_forgets_pressure(self):
        log = BankActivationLog()
        log.activate(5, 0.0)
        log.close(300.0)
        log.activate(6, 400.0)
        log.close(500.0)
        log.reset_row(5)
        assert log.counts == {6: 1}
        assert log.on_ns == {6: 100.0}
