"""Property-based timing invariants for the memory controller."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mc.controller import MemoryController, RefreshSettings
from repro.mc.request import Request, RequestKind


def _drive(controller, requests, horizon_ns):
    completed = []
    controller.on_read_complete = completed.append
    for request in requests:
        controller.enqueue(request)
    now = 0.0
    while now < horizon_ns:
        now = max(controller.tick(now), now + controller.timing.tCK)
    return completed


request_batches = st.lists(
    st.tuples(
        st.integers(0, 7),        # bank
        st.integers(0, 63),       # row
        st.floats(0.0, 20_000.0),  # arrival
    ),
    min_size=1, max_size=25,
)


class TestServiceInvariants:
    @given(request_batches)
    @settings(max_examples=40, deadline=None)
    def test_every_read_completes_after_arrival(self, batch):
        controller = MemoryController()
        requests = [
            Request(kind=RequestKind.READ, core=0, bank=bank, row=row,
                    arrival_ns=arrival)
            for bank, row, arrival in batch
        ]
        completed = _drive(controller, list(requests), 100_000.0)
        assert len(completed) == len(requests)
        for request in completed:
            assert request.completion_ns > request.arrival_ns

    @given(request_batches)
    @settings(max_examples=40, deadline=None)
    def test_data_bursts_never_overlap(self, batch):
        """The shared data bus serialises bursts: completions on the rank
        must be spaced by at least one burst time."""
        controller = MemoryController()
        requests = [
            Request(kind=RequestKind.READ, core=0, bank=bank, row=row,
                    arrival_ns=arrival)
            for bank, row, arrival in batch
        ]
        completed = _drive(controller, list(requests), 100_000.0)
        burst_ns = controller.timing.burst_cycles * controller.timing.tCK
        times = sorted(r.completion_ns for r in completed)
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= burst_ns - 1e-9

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_refresh_strictly_reduces_saturated_throughput(self, seed):
        """Under a saturating request stream, a heavily-refreshed rank
        must finish fewer reads than a lightly-refreshed one."""
        rng = np.random.default_rng(seed)
        batch = [
            Request(kind=RequestKind.READ, core=0,
                    bank=int(rng.integers(8)), row=int(rng.integers(64)),
                    arrival_ns=float(i) * 10.0)
            for i in range(60)
        ]
        def clone(requests):
            return [
                Request(kind=r.kind, core=r.core, bank=r.bank, row=r.row,
                        arrival_ns=r.arrival_ns)
                for r in requests
            ]
        heavy = MemoryController(
            refresh=RefreshSettings(base_interval_ms=16.0),
        )
        heavy.timing = heavy.timing.with_density(32)  # tRFC = 890 ns
        light = MemoryController(
            refresh=RefreshSettings(base_interval_ms=16.0, reduction=0.75),
        )
        light.timing = light.timing.with_density(32)
        horizon = 4000.0  # ~2 refresh windows for the heavy rank
        done_heavy = _drive(heavy, clone(batch), horizon)
        done_light = _drive(light, clone(batch), horizon)
        finished_heavy = sum(
            1 for r in done_heavy if r.completion_ns <= horizon
        )
        finished_light = sum(
            1 for r in done_light if r.completion_ns <= horizon
        )
        assert finished_light >= finished_heavy
