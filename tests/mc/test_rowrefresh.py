"""Tests for row-granularity refresh scheduling."""

import pytest

from repro.dram.timing import DDR3_1600
from repro.mc.bank import BankActivationLog, BankState
from repro.mc.rowrefresh import (
    RowRefreshScheduler,
    RowRefreshSettings,
    TargetRowRefresh,
    TrrSettings,
)
from repro.sim.system import SystemConfig, SystemSimulator
from repro.traces.spec import get_benchmark


class TestSettings:
    def test_command_rate_two_populations(self):
        settings = RowRefreshSettings(hi_rows=100, lo_rows=300)
        # 100/16 + 300/64 = 6.25 + 4.6875 per ms.
        assert settings.commands_per_ms == pytest.approx(10.9375)

    def test_reduction_matches_raidr_formula(self):
        # 16% HI rows: reduction = 0.84 * 0.75 = 63%.
        settings = RowRefreshSettings(hi_rows=160, lo_rows=840)
        assert settings.refresh_reduction() == pytest.approx(0.63)

    def test_all_hi_means_no_reduction(self):
        settings = RowRefreshSettings(hi_rows=100, lo_rows=0)
        assert settings.refresh_reduction() == pytest.approx(0.0)

    def test_all_lo_hits_upper_bound(self):
        settings = RowRefreshSettings(hi_rows=0, lo_rows=100)
        assert settings.refresh_reduction() == pytest.approx(0.75)

    @pytest.mark.parametrize("kwargs", [
        {"hi_rows": -1, "lo_rows": 1},
        {"hi_rows": 0, "lo_rows": 0},
        {"hi_rows": 1, "lo_rows": 1, "hi_interval_ms": 0.0},
    ])
    def test_invalid_settings_raise(self, kwargs):
        with pytest.raises(ValueError):
            RowRefreshSettings(**kwargs)


class TestScheduler:
    def _scheduler(self, hi=160, lo=840):
        return RowRefreshScheduler(
            RowRefreshSettings(hi_rows=hi, lo_rows=lo), DDR3_1600, banks=4,
        )

    def test_row_cycle_cost(self):
        assert self._scheduler().row_cycle_ns == 39.0

    def test_issues_on_schedule(self):
        scheduler = self._scheduler()
        banks = [BankState() for _ in range(4)]
        due = scheduler.next_due_ns
        assert not scheduler.tick(due - 1.0, banks)
        assert scheduler.tick(due, banks)
        assert scheduler.commands_issued == 1

    def test_round_robin_across_banks(self):
        scheduler = self._scheduler()
        banks = [BankState() for _ in range(4)]
        for i in range(8):
            scheduler.tick(scheduler.next_due_ns, banks)
        # All four banks were touched twice.
        for bank in banks:
            assert bank.ready_ns > 0

    def test_refresh_closes_open_row(self):
        scheduler = self._scheduler()
        banks = [BankState(open_row=7) for _ in range(4)]
        scheduler.tick(scheduler.next_due_ns, banks)
        assert banks[0].open_row is None
        assert banks[1].open_row == 7  # other banks untouched

    def test_busy_time_accumulates(self):
        scheduler = self._scheduler()
        banks = [BankState() for _ in range(4)]
        for _ in range(10):
            scheduler.tick(scheduler.next_due_ns, banks)
        assert scheduler.busy_ns == pytest.approx(10 * 39.0)


class TestTargetRowRefresh:
    def _engine(self, threshold=3, radius=1, rows_per_bank=64):
        return TargetRowRefresh(
            TrrSettings(threshold=threshold, neighbor_radius=radius),
            DDR3_1600, rows_per_bank,
        )

    def _hammered_bank(self, row, acts):
        bank = BankState(act_log=BankActivationLog())
        for i in range(acts):
            bank.act_log.activate(row, 100.0 * i)
            bank.act_log.close(100.0 * i + 50.0)
        return bank

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0},
        {"threshold": -2},
        {"threshold": 4, "neighbor_radius": 0},
    ])
    def test_invalid_settings_raise(self, kwargs):
        with pytest.raises(ValueError):
            TrrSettings(**kwargs)

    def test_below_threshold_is_a_no_op(self):
        engine = self._engine(threshold=3)
        bank = self._hammered_bank(row=10, acts=2)
        assert not engine.observe(bank, 10, now_ns=1000.0)
        assert engine.triggers == 0
        assert bank.act_log.counts == {10: 2}

    def test_threshold_fires_and_resets_counter(self):
        engine = self._engine(threshold=3)
        bank = self._hammered_bank(row=10, acts=3)
        assert engine.observe(bank, 10, now_ns=1000.0)
        assert engine.triggers == 1
        assert engine.refreshes_issued == 2  # rows 9 and 11
        assert 10 not in bank.act_log.counts
        assert 10 not in bank.act_log.on_ns
        # The bank is occupied for one row cycle per neighbour.
        assert bank.ready_ns == pytest.approx(
            1000.0 + 2 * engine.row_cycle_ns
        )

    def test_edge_row_refreshes_fewer_neighbors(self):
        engine = self._engine(threshold=1, rows_per_bank=64)
        bank = self._hammered_bank(row=0, acts=1)
        assert engine.observe(bank, 0, now_ns=0.0)
        assert engine.refreshes_issued == 1  # only row 1 exists

    def test_mitigation_closes_open_row(self):
        engine = self._engine(threshold=1)
        bank = BankState(act_log=BankActivationLog())
        bank.act_log.activate(10, 0.0)
        bank.open_row = 10
        assert engine.observe(bank, 10, now_ns=500.0)
        assert bank.open_row is None
        assert bank.act_log.open_row is None

    def test_untracked_bank_never_fires(self):
        engine = self._engine(threshold=1)
        assert not engine.observe(BankState(), 10, now_ns=0.0)


class TestSystemIntegration:
    def _run(self, row_refresh=None, reduction=0.0, window=40_000.0):
        config = SystemConfig(
            density_gbit=32,
            row_refresh=row_refresh,
        )
        if reduction:
            from repro.mc.controller import RefreshSettings
            config = SystemConfig(
                density_gbit=32,
                refresh=RefreshSettings(reduction=reduction),
            )
        sim = SystemSimulator([get_benchmark("mcf")], config, seed=3)
        return sim.run(window)

    def test_row_refresh_disables_all_bank(self):
        settings = RowRefreshSettings(hi_rows=1311, lo_rows=6881)
        result = self._run(row_refresh=settings)
        # Only row-granular commands issued; the first fires one interval
        # in, so the count over the window is the floor of the rate.
        expected = int(40_000.0 / settings.command_interval_ns)
        assert result.refreshes_issued == expected

    def test_row_granular_beats_all_bank_at_equal_work(self):
        """For the same refresh-operation reduction, blocking one bank at
        a time interferes less than blocking the whole rank."""
        settings = RowRefreshSettings(hi_rows=1311, lo_rows=6881)
        row = self._run(row_refresh=settings)
        allbank = self._run(reduction=settings.refresh_reduction())
        assert row.cores[0].ipc > allbank.cores[0].ipc
