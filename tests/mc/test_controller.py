"""Tests for the cycle-level memory controller."""

import pytest

from repro.dram.timing import DDR3_1600
from repro.mc.controller import (
    MemoryController,
    RefreshSettings,
    TestTrafficSettings,
)
from repro.mc.request import Request, RequestKind


def _run_idle(controller, until_ns):
    now = 0.0
    while now < until_ns:
        now = max(controller.tick(now), now + controller.timing.tCK)


class TestRefreshSettings:
    def test_effective_trefi_baseline(self):
        settings = RefreshSettings(base_interval_ms=16.0)
        assert settings.effective_trefi_ns == pytest.approx(1953.125)

    def test_reduction_stretches_trefi(self):
        settings = RefreshSettings(base_interval_ms=16.0, reduction=0.75)
        assert settings.effective_trefi_ns == pytest.approx(4 * 1953.125)

    def test_invalid_reduction_raises(self):
        with pytest.raises(ValueError):
            RefreshSettings(reduction=1.0)


class TestTestTrafficSettings:
    def test_disabled_by_default(self):
        assert TestTrafficSettings().request_interval_ns is None

    def test_interval_matches_rate(self):
        # 256 tests x 256 requests per 64 ms window.
        settings = TestTrafficSettings(concurrent_tests=256)
        expected = 64e6 / (256 * 256)
        assert settings.request_interval_ns == pytest.approx(expected)


class TestRefreshCadence:
    def test_refresh_count_matches_trefi(self):
        controller = MemoryController()
        _run_idle(controller, 100_000.0)
        expected = int(100_000.0 / controller.refresh.effective_trefi_ns)
        assert abs(controller.rank.refreshes_issued - expected) <= 1

    def test_reduction_scales_refresh_count(self):
        base = MemoryController(refresh=RefreshSettings())
        reduced = MemoryController(
            refresh=RefreshSettings(reduction=0.75)
        )
        _run_idle(base, 100_000.0)
        _run_idle(reduced, 100_000.0)
        ratio = reduced.rank.refreshes_issued / base.rank.refreshes_issued
        assert ratio == pytest.approx(0.25, abs=0.02)

    def test_refresh_busy_time(self):
        controller = MemoryController()
        _run_idle(controller, 100_000.0)
        assert controller.rank.refresh_busy_ns == (
            controller.rank.refreshes_issued * controller.timing.tRFC
        )


class TestRequestService:
    def test_read_completes_with_callback(self):
        completed = []
        controller = MemoryController(on_read_complete=completed.append)
        controller.enqueue(Request(
            kind=RequestKind.READ, core=0, bank=0, row=5, arrival_ns=0.0,
        ))
        _run_idle(controller, 2000.0)
        assert len(completed) == 1
        assert completed[0].completion_ns > 0

    def test_requests_not_served_during_refresh(self):
        completed = []
        controller = MemoryController(on_read_complete=completed.append)
        trefi = controller.refresh.effective_trefi_ns
        # Arrive just as a refresh is due.
        controller.enqueue(Request(
            kind=RequestKind.READ, core=0, bank=0, row=1,
            arrival_ns=trefi + 1.0,
        ))
        _run_idle(controller, trefi + 5000.0)
        request = completed[0]
        # Data cannot return until the refresh (tRFC) has finished.
        assert request.completion_ns >= trefi + controller.timing.tRFC

    def test_test_traffic_injected_at_rate(self):
        controller = MemoryController(
            test_traffic=TestTrafficSettings(concurrent_tests=256),
        )
        _run_idle(controller, 100_000.0)
        # 256 tests x 256 requests / 64 ms = 1024 requests per ms.
        # The controller both injects and (idle otherwise) serves them.
        stats = controller.stats()
        served = stats.row_hits + stats.row_misses + stats.row_conflicts
        expected = 100_000.0 / controller.test_traffic.request_interval_ns
        assert served == pytest.approx(expected, rel=0.1)

    def test_row_buffer_stats_accumulate(self):
        controller = MemoryController()
        for i in range(4):
            controller.enqueue(Request(
                kind=RequestKind.READ, core=0, bank=0, row=7,
                arrival_ns=float(i),
            ))
        _run_idle(controller, 5000.0)
        stats = controller.stats()
        assert stats.row_misses + stats.row_conflicts >= 1
        assert stats.row_hits >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryController(banks=0)
