"""Host-unit simulation: determinism, fault screen, tables."""

import pytest

from repro.fleet import hostsim
from repro.parallel.units import decompose, execute_unit
from repro.traces.generator import generate_trace
from repro.traces.workloads import WORKLOADS

WORKLOAD_PARAMS = {
    "host": "h0", "tenant": "t", "seed": 7,
    "workload": "Netflix", "duration_ms": 2048.0,
}

STREAM_PARAMS = {
    "host": "s0", "tenant": "t", "seed": 3,
    "duration_ms": 2048.0, "total_pages": 64,
    "writes": {
        "1": [10.0, 600.0, 1500.0],
        "7": [100.0],
        "40": [5.0, 5.5, 6.0, 1800.0],
    },
}


class TestHostUnit:
    def test_requires_identity(self):
        with pytest.raises(ValueError, match="missing"):
            hostsim.host_unit({"host": "h0"})

    def test_requires_trace_source(self):
        with pytest.raises(ValueError, match="neither a workload"):
            hostsim.host_unit({"host": "h0", "tenant": "t", "seed": 1})

    def test_unit_round_trips_through_registry(self):
        unit = hostsim.host_unit(dict(WORKLOAD_PARAMS), seq=2)
        assert unit.experiment == hostsim.EXPERIMENT
        assert unit.module == "repro.fleet.hostsim"
        assert unit.seq == 2
        payload = execute_unit(
            unit, quick=hostsim.HOST_QUICK, seed=hostsim.HOST_SEED)
        assert payload == hostsim.run_host(dict(WORKLOAD_PARAMS))

    def test_static_decomposition_is_empty(self):
        assert decompose("fleet_host", quick=True, seed=1) == []


class TestDeterminism:
    def test_workload_host_repeats_bitwise(self):
        a = hostsim.run_host(dict(WORKLOAD_PARAMS))
        b = hostsim.run_host(dict(WORKLOAD_PARAMS))
        assert a == b
        assert hostsim.host_table(a) == hostsim.host_table(b)

    def test_streamed_host_repeats_bitwise(self):
        a = hostsim.run_host(dict(STREAM_PARAMS))
        b = hostsim.run_host(dict(STREAM_PARAMS))
        assert a == b

    def test_streamed_trace_equals_workload_trace(self):
        """Streaming a generated trace reproduces the workload path."""
        trace = generate_trace(
            WORKLOADS["Netflix"], seed=7, duration_ms=2048.0)
        streamed = {
            "host": "h0", "tenant": "t", "seed": 7,
            "duration_ms": 2048.0, "total_pages": trace.total_pages,
            "writes": {
                str(page): [float(t) for t in times]
                for page, times in trace.writes.items()
            },
        }
        via_stream = hostsim.run_host(streamed)
        via_workload = hostsim.run_host(dict(WORKLOAD_PARAMS))
        assert via_stream["report"] == via_workload["report"]

    def test_seed_changes_results(self):
        # The seed drives the fault screen (chip content), so two hosts
        # differing only in seed see different failing populations.
        screen = {"vulnerable_cell_rate": 5.0e-3, "bits_per_row": 256}
        a = hostsim.run_host(
            dict(STREAM_PARAMS, seed=3, fault_screen=dict(screen)))
        b = hostsim.run_host(
            dict(STREAM_PARAMS, seed=4, fault_screen=dict(screen)))
        assert a["screen"]["failing_pages"] != b["screen"]["failing_pages"]
        assert a["report"] != b["report"]


class TestFaultScreen:
    def test_screen_sets_failing_fraction(self):
        params = dict(STREAM_PARAMS)
        params["fault_screen"] = {
            "vulnerable_cell_rate": 5.0e-3, "bits_per_row": 256,
            "chunk_rows": 16,
        }
        payload = hostsim.run_host(params)
        screen = payload["screen"]
        assert screen["failing_pages"] >= 0
        assert payload["failing_page_fraction"] == pytest.approx(
            screen["failing_pages"] / STREAM_PARAMS["total_pages"])

    def test_budget_bounds_resident_peak(self):
        params = dict(STREAM_PARAMS)
        params["fault_screen"] = {
            "vulnerable_cell_rate": 5.0e-3, "bits_per_row": 256,
            "chunk_rows": 8, "max_resident_rows": 16,
        }
        payload = hostsim.run_host(params)
        assert payload["screen"]["resident_rows_peak"] <= 16

    def test_screen_is_deterministic(self):
        params = dict(STREAM_PARAMS)
        params["fault_screen"] = {"vulnerable_cell_rate": 5.0e-3,
                                  "bits_per_row": 256}
        budgeted = dict(params)
        budgeted["fault_screen"] = dict(
            params["fault_screen"], max_resident_rows=8, chunk_rows=8)
        a = hostsim.run_host(params)
        b = hostsim.run_host(budgeted)
        # Eviction + regeneration never changes the screen verdicts.
        assert (a["screen"]["failing_pages"]
                == b["screen"]["failing_pages"])
        assert a["report"] == b["report"]

    def test_explicit_fraction_skips_screen(self):
        params = dict(STREAM_PARAMS, failing_page_fraction=0.5)
        payload = hostsim.run_host(params)
        assert "screen" not in payload
        assert payload["failing_page_fraction"] == 0.5
        assert payload["report"]["tests_failed"] > 0


class TestRollup:
    def test_rollup_attaches_windows(self):
        params = dict(WORKLOAD_PARAMS, rollup=True)
        payload = hostsim.run_host(params)
        rollup = payload["rollup"]
        assert rollup["events_total"] > 0
        assert rollup["windows"]
        assert set(rollup["pril"]) == {
            "quanta", "started", "resolved", "hit_rate"}
        assert any("lo_fraction" in w for w in rollup["windows"])

    def test_rollup_does_not_change_report(self):
        plain_payload = hostsim.run_host(dict(WORKLOAD_PARAMS))
        rollup_payload = hostsim.run_host(
            dict(WORKLOAD_PARAMS, rollup=True))
        assert plain_payload["report"] == rollup_payload["report"]


class TestTables:
    def test_host_table_is_stable(self):
        payload = hostsim.run_host(dict(WORKLOAD_PARAMS))
        table = hostsim.host_table(payload)
        assert "fleet_host:h0" in table
        assert hostsim.host_table(payload) == table

    def test_merge_units_folds_rows(self):
        payloads = [
            hostsim.run_host(dict(WORKLOAD_PARAMS)),
            hostsim.run_host(dict(STREAM_PARAMS)),
        ]
        result = hostsim.merge_units(payloads)
        text = result.to_text()
        assert "h0" in text and "s0" in text
        assert "2 hosts" in result.notes
