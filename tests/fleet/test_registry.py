"""Host/tenant registry lifecycle and seal semantics."""

import pytest

from repro.fleet.registry import (
    FleetError,
    HostRegistry,
    HostSpec,
    TenantProfile,
    host_seed,
)


def make_registry():
    registry = HostRegistry()
    registry.add_tenant(TenantProfile(
        "web", workload="Netflix", duration_ms=2048.0, seed_base=11))
    return registry


class TestRegistration:
    def test_duplicate_tenant(self):
        registry = make_registry()
        with pytest.raises(FleetError, match="already registered"):
            registry.add_tenant(TenantProfile("web"))

    def test_host_requires_tenant(self):
        registry = make_registry()
        with pytest.raises(FleetError, match="unknown tenant"):
            registry.add_host(HostSpec("h0", "nope"))

    def test_duplicate_host(self):
        registry = make_registry()
        registry.add_host(HostSpec("h0", "web"))
        with pytest.raises(FleetError, match="already registered"):
            registry.add_host(HostSpec("h0", "web"))

    def test_counts(self):
        registry = make_registry()
        registry.add_host(HostSpec("h0", "web"))
        counts = registry.counts()
        assert counts["registered"] == 1
        assert counts["total"] == 1
        assert counts["tenants"] == 1
        assert not registry.all_done()


class TestHostSeed:
    def test_explicit_seed_wins(self):
        tenant = TenantProfile("t", seed_base=99)
        assert host_seed(HostSpec("h", "t", seed=5), tenant) == 5

    def test_derived_seed_is_stable_and_distinct(self):
        tenant = TenantProfile("t", seed_base=99)
        a1 = host_seed(HostSpec("a", "t"), tenant)
        a2 = host_seed(HostSpec("a", "t"), tenant)
        b = host_seed(HostSpec("b", "t"), tenant)
        assert a1 == a2
        assert a1 != b


class TestSeal:
    def test_workload_host_inherits_tenant(self):
        registry = make_registry()
        registry.add_host(HostSpec("h0", "web"))
        params = registry.seal("h0")
        assert params["workload"] == "Netflix"
        assert params["duration_ms"] == 2048.0
        assert params["host"] == "h0"
        assert registry.counts()["sealed"] == 1

    def test_streamed_host_needs_total_pages(self):
        registry = make_registry()
        registry.add_host(HostSpec("h0", "web"))
        registry.append_writes("h0", 3, [1.0])
        with pytest.raises(FleetError, match="total_pages"):
            registry.seal("h0")

    def test_streamed_host_params_sorted(self):
        registry = make_registry()
        registry.add_host(HostSpec("h0", "web", total_pages=16))
        registry.append_writes("h0", 5, [7.0, 2.0])
        registry.append_writes("h0", 1, [3.0])
        registry.append_writes("h0", 5, [1.0])
        params = registry.seal("h0")
        assert list(params["writes"]) == ["1", "5"]
        assert params["writes"]["5"] == [1.0, 2.0, 7.0]
        assert "workload" not in params

    def test_no_workload_no_writes(self):
        registry = HostRegistry()
        registry.add_tenant(TenantProfile("bare", duration_ms=1024.0))
        registry.add_host(HostSpec("h0", "bare"))
        with pytest.raises(FleetError, match="neither streamed writes"):
            registry.seal("h0")

    def test_ingest_after_seal_rejected(self):
        registry = make_registry()
        registry.add_host(HostSpec("h0", "web"))
        registry.seal("h0")
        with pytest.raises(FleetError, match="only valid before seal"):
            registry.append_writes("h0", 0, [1.0])
        with pytest.raises(FleetError, match="cannot seal"):
            registry.seal("h0")

    def test_tenant_fault_screen_copied(self):
        registry = HostRegistry()
        registry.add_tenant(TenantProfile(
            "t", workload="Netflix", duration_ms=1024.0,
            fault_screen={"max_resident_rows": 8}))
        registry.add_host(HostSpec("h0", "t"))
        params = registry.seal("h0")
        assert params["fault_screen"] == {"max_resident_rows": 8}

    def test_explicit_fraction_beats_screen(self):
        registry = HostRegistry()
        registry.add_tenant(TenantProfile(
            "t", workload="Netflix", duration_ms=1024.0,
            fault_screen={"max_resident_rows": 8}))
        registry.add_host(
            HostSpec("h0", "t", failing_page_fraction=0.25))
        params = registry.seal("h0")
        assert params["failing_page_fraction"] == 0.25
        assert "fault_screen" not in params


class TestCompletion:
    def test_complete_and_table(self):
        registry = make_registry()
        registry.add_host(HostSpec("h0", "web"))
        registry.seal("h0")
        payload = {"report": {
            "refresh_reduction": 0.5, "lo_ref_time_fraction": 0.4,
            "tests_total": 3,
        }}
        registry.complete("h0", payload, "TABLE", wall_s=0.1)
        assert registry.host_table("h0") == "TABLE"
        assert registry.all_done()
        detail = registry.host_detail("h0")
        assert detail["status"] == "done"
        assert detail["payload"] is payload

    def test_table_before_done_raises(self):
        registry = make_registry()
        registry.add_host(HostSpec("h0", "web"))
        with pytest.raises(FleetError, match="no table yet"):
            registry.host_table("h0")

    def test_fail_marks_terminal(self):
        registry = make_registry()
        registry.add_host(HostSpec("h0", "web"))
        registry.seal("h0")
        registry.fail("h0", "boom")
        assert registry.all_done()
        assert registry.host_detail("h0")["error"] == "boom"
