"""HTTP endpoint end-to-end over a real socket."""

import json

import pytest

from repro import obs
from repro.fleet import hostsim
from repro.fleet.client import FleetClient, FleetClientError
from repro.fleet.server import FleetService, run_service_in_thread

WRITES = {
    1: [10.0, 600.0, 1500.0],
    9: [5.0, 1800.0],
}


@pytest.fixture
def fleet():
    """A live service on an ephemeral port + a client bound to it."""
    previous = obs.set_registry(obs.MetricsRegistry(enabled=True))
    service = FleetService(jobs=1)
    server, thread = run_service_in_thread(service)
    client = FleetClient(port=server.port)
    try:
        yield service, client
    finally:
        try:
            client.shutdown()
        except Exception:
            pass
        thread.join(timeout=30)
        service.close(wait=True)
        obs.set_registry(previous)


def register_small_host(client, host_id="h0", tenant="t"):
    client.register_host({
        "host_id": host_id, "tenant": tenant, "total_pages": 64,
    })
    client.stream_trace(host_id, WRITES)


class TestRoutes:
    def test_healthz(self, fleet):
        _service, client = fleet
        assert client._json("GET", "/healthz") == {"ok": True}

    def test_unknown_route_404(self, fleet):
        _service, client = fleet
        with pytest.raises(FleetClientError) as err:
            client._json("GET", "/v1/nope")
        assert err.value.status == 404

    def test_bad_json_400(self, fleet):
        _service, client = fleet
        with pytest.raises(FleetClientError) as err:
            client._request("POST", "/v1/tenants", "{not json")
        assert err.value.status == 400

    def test_unknown_host_404(self, fleet):
        _service, client = fleet
        with pytest.raises(FleetClientError) as err:
            client.host_detail("ghost")
        assert err.value.status == 404

    def test_protocol_violation_400(self, fleet):
        _service, client = fleet
        with pytest.raises(FleetClientError) as err:
            client.register_tenant({"tenant_id": "t", "bogus": 1})
        assert err.value.status == 400
        assert "unknown fields" in str(err.value)

    def test_wrong_method_405(self, fleet):
        _service, client = fleet
        with pytest.raises(FleetClientError) as err:
            client._request("DELETE", "/v1/tenants", None)
        assert err.value.status == 405


class TestLifecycle:
    def test_full_host_lifecycle(self, fleet):
        _service, client = fleet
        client.register_tenant({
            "tenant_id": "t", "duration_ms": 2048.0, "seed_base": 5,
        })
        register_small_host(client)
        hosts = client.hosts()
        assert hosts[0]["status"] == "registered"
        assert hosts[0]["streamed_pages"] == len(WRITES)

        sealed = client.seal("h0")
        assert sealed["sealed"] == "h0"
        status = client.wait_all_done(timeout_s=120.0)
        assert status["hosts"]["done"] == 1
        assert status["fleet"]["hosts"]["done"] == 1
        assert status["queue"]["hosts_done"] == 1

        detail = client.host_detail("h0")
        assert detail["status"] == "done"
        served = client.host_table("h0")
        assert served == hostsim.host_table(
            hostsim.run_host(detail["params"]))

    def test_ingest_after_seal_400(self, fleet):
        _service, client = fleet
        client.register_tenant({"tenant_id": "t", "duration_ms": 2048.0})
        register_small_host(client)
        client.seal("h0")
        with pytest.raises(FleetClientError) as err:
            client.stream_trace("h0", {2: [1.0]})
        assert err.value.status == 400
        client.wait_all_done(timeout_s=120.0)

    def test_ingest_accounting(self, fleet):
        _service, client = fleet
        client.register_tenant({"tenant_id": "t", "duration_ms": 2048.0})
        register_small_host(client)
        status = client.status()
        assert status["fleet"]["ingest"]["records"] == len(WRITES)

    def test_manifest_has_fleet_section(self, fleet):
        _service, client = fleet
        client.register_tenant({"tenant_id": "t", "duration_ms": 2048.0})
        register_small_host(client)
        client.seal("h0")
        client.wait_all_done(timeout_s=120.0)
        manifest = client.manifest()
        assert manifest["schema"] == 1
        assert manifest["experiments"] == ["fleet"]
        assert manifest["fleet"]["hosts"]["done"] == 1
        assert manifest["fleet"]["tenants"]["t"]["hosts_done"] == 1
        # The fleet section survives a manifest round trip.
        doc = obs.RunManifest.from_dict(manifest).to_dict()
        assert doc["fleet"] == manifest["fleet"]

    def test_experiment_job_over_http(self, fleet):
        _service, client = fleet
        job_id = client.submit_job("fig04", quick=True, seed=1)
        job = client.wait_job(job_id, timeout_s=300.0)
        assert job["status"] == "done"
        assert "fig04" in job["table"]

    def test_unknown_job_404(self, fleet):
        _service, client = fleet
        with pytest.raises(FleetClientError) as err:
            client.job("job-9999-nope")
        assert err.value.status == 404

    def test_table_before_done_400(self, fleet):
        _service, client = fleet
        client.register_tenant({"tenant_id": "t", "duration_ms": 2048.0})
        register_small_host(client)
        with pytest.raises(FleetClientError) as err:
            client.host_table("h0")
        assert err.value.status == 400
