"""Fleet determinism properties (the ISSUE acceptance gates).

A host simulated through the fleet — any job count, any batching — must
produce byte-identical tables to the standalone runner, and paper
experiments scheduled through the fleet must match their serial output.
"""

import threading

import pytest

from repro.fleet import hostsim
from repro.fleet.scheduler import FleetScheduler
from repro.parallel.executor import ParallelExecutor
from repro.parallel.units import decompose, execute_unit, merge_payloads


def host_params(host_id, seed, workload=None):
    params = {
        "host": host_id, "tenant": "t", "seed": seed,
        "duration_ms": 2048.0,
    }
    if workload:
        params["workload"] = workload
    else:
        params.update(
            total_pages=64,
            writes={
                "1": [10.0, 600.0, 1500.0],
                "9": [5.0, 1800.0],
                "33": [100.0, 101.0, 102.0, 1200.0],
            },
        )
    return params


FLEET_PARAMS = [
    host_params("w0", 1, workload="Netflix"),
    host_params("w1", 2, workload="SystemMgt"),
    host_params("s0", 3),
    host_params("s1", 4),
]


class TestHostsAcrossJobCounts:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_fleet_tables_match_standalone(self, jobs):
        results = {}
        lock = threading.Lock()

        def collect(host_id, payload, wall_s):
            with lock:
                results[host_id] = payload

        with FleetScheduler(
            jobs=jobs, batch_max=3, on_host_result=collect
        ) as scheduler:
            for params in FLEET_PARAMS:
                scheduler.submit_host(dict(params))
            assert scheduler.join(timeout=600)
        assert sorted(results) == sorted(p["host"] for p in FLEET_PARAMS)
        for params in FLEET_PARAMS:
            standalone = hostsim.run_host(dict(params))
            fleet_payload = results[params["host"]]
            assert fleet_payload == standalone
            assert (hostsim.host_table(fleet_payload)
                    == hostsim.host_table(standalone))


def serial_table(name):
    units = decompose(name, quick=True, seed=1)
    payloads = [execute_unit(u, quick=True, seed=1) for u in units]
    return merge_payloads(name, payloads, quick=True, seed=1).to_text()


class TestExperimentsThroughFleet:
    @pytest.mark.parametrize("name", ["fig04", "hammer01"])
    def test_fleet_job_matches_serial_and_pool(self, name):
        serial = serial_table(name)

        # The runner's own parallel path at --jobs 2...
        units = decompose(name, quick=True, seed=1)
        with ParallelExecutor(2, quick=True, seed=1) as executor:
            payloads, _stats = executor.run_units(units)
        pooled = merge_payloads(
            name, payloads, quick=True, seed=1).to_text()
        assert pooled == serial

        # ...and the fleet scheduler must both reproduce serial bytes.
        jobs = {}
        with FleetScheduler(
            jobs=2,
            on_job_done=lambda job_id, result, wall: jobs.update(
                {job_id: result}),
        ) as scheduler:
            scheduler.submit_experiment("j0", name, quick=True, seed=1)
            assert scheduler.join(timeout=600)
        result = jobs["j0"]
        assert not isinstance(result, Exception)
        assert result.to_text() == serial
