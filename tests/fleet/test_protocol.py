"""Fleet wire-protocol validation."""

import pytest

from repro.fleet import protocol
from repro.fleet.registry import TenantProfile


class TestParseTenant:
    def test_minimal(self):
        profile = protocol.parse_tenant({"tenant_id": "web"})
        assert profile.tenant_id == "web"
        assert profile.workload is None
        assert profile.rollup is False

    def test_full(self):
        profile = protocol.parse_tenant({
            "tenant_id": "web", "workload": "Netflix",
            "duration_ms": 4096.0, "quantum_ms": 512.0, "seed_base": 7,
            "rollup": True, "fault_screen": {"max_resident_rows": 64},
            "description": "d",
        })
        assert profile.workload == "Netflix"
        assert profile.seed_base == 7
        assert profile.fault_screen == {"max_resident_rows": 64}

    def test_unknown_field_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="unknown fields"):
            protocol.parse_tenant({"tenant_id": "web", "wrkload": "x"})

    def test_unknown_workload_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="workload"):
            protocol.parse_tenant({"tenant_id": "w", "workload": "NoSuch"})

    def test_not_a_mapping(self):
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.parse_tenant(["tenant_id"])

    def test_bool_is_not_a_number(self):
        with pytest.raises(protocol.ProtocolError, match="duration_ms"):
            protocol.parse_tenant({"tenant_id": "w", "duration_ms": True})


class TestParseHost:
    def test_minimal(self):
        spec = protocol.parse_host({"host_id": "h0", "tenant": "web"})
        assert spec.host_id == "h0"
        assert spec.seed is None
        assert spec.rollup is None

    def test_missing_tenant(self):
        with pytest.raises(protocol.ProtocolError, match="tenant"):
            protocol.parse_host({"host_id": "h0"})

    def test_seed_must_be_int(self):
        with pytest.raises(protocol.ProtocolError, match="seed"):
            protocol.parse_host(
                {"host_id": "h0", "tenant": "t", "seed": 1.5})


class TestTraceLines:
    def test_round_trip(self):
        writes = {3: [1.0, 2.5], 1: [0.25]}
        text = protocol.trace_lines(writes)
        parsed = {
            page: times
            for page, times in map(
                protocol.parse_trace_line, protocol.iter_ndjson(text))
        }
        assert parsed == {1: [0.25], 3: [1.0, 2.5]}

    def test_blank_lines_skipped(self):
        text = '\n{"page": 0, "t_ms": [1]}\n\n'
        assert len(list(protocol.iter_ndjson(text))) == 1

    def test_bad_json_reports_line(self):
        with pytest.raises(protocol.ProtocolError, match="line 2"):
            list(protocol.iter_ndjson('{"page": 0, "t_ms": [1]}\n{nope\n'))

    def test_negative_page(self):
        with pytest.raises(protocol.ProtocolError, match="negative page"):
            protocol.parse_trace_line({"page": -1, "t_ms": [1.0]})

    def test_negative_timestamp(self):
        with pytest.raises(protocol.ProtocolError, match="timestamp"):
            protocol.parse_trace_line({"page": 0, "t_ms": [-2.0]})

    def test_empty_times(self):
        with pytest.raises(protocol.ProtocolError, match="t_ms"):
            protocol.parse_trace_line({"page": 0, "t_ms": []})

    def test_empty_writes_encode(self):
        assert protocol.trace_lines({}) == ""


class TestEncodeTenant:
    def test_round_trip_drops_defaults(self):
        profile = TenantProfile("web", workload="Netflix", seed_base=3)
        message = protocol.encode_tenant(profile)
        assert message == {
            "tenant_id": "web", "workload": "Netflix", "seed_base": 3}
        again = protocol.parse_tenant(message)
        assert again.workload == profile.workload
        assert again.seed_base == profile.seed_base
