"""Fleet scheduler: batching, callbacks, checkpoint resume, experiments."""

import threading

import pytest

from repro.fleet import hostsim
from repro.fleet.scheduler import FleetScheduler
from repro.parallel.units import decompose, execute_unit, merge_payloads


def host_params(host_id, seed=3):
    return {
        "host": host_id, "tenant": "t", "seed": seed,
        "duration_ms": 2048.0, "total_pages": 64,
        "writes": {
            "1": [10.0, 600.0, 1500.0],
            "9": [5.0, 1800.0],
        },
    }


class Collector:
    def __init__(self):
        self.results = {}
        self.errors = {}
        self.jobs = {}
        self.lock = threading.Lock()

    def host_result(self, host_id, payload, wall_s):
        with self.lock:
            self.results[host_id] = payload

    def host_error(self, host_id, error):
        with self.lock:
            self.errors[host_id] = error

    def job_done(self, job_id, result, wall_s):
        with self.lock:
            self.jobs[job_id] = result


class TestHostBatches:
    def test_hosts_stream_back_deterministically(self):
        collector = Collector()
        with FleetScheduler(
            jobs=1, batch_max=2, on_host_result=collector.host_result
        ) as scheduler:
            for i in range(5):
                scheduler.submit_host(host_params(f"h{i}", seed=i))
            assert scheduler.join(timeout=120)
            assert scheduler.backlog() == 0
        assert sorted(collector.results) == [f"h{i}" for i in range(5)]
        assert scheduler.stats.hosts_done == 5
        # batch_max=2 over 5 consecutive hosts -> at least 3 batches
        assert scheduler.stats.batches >= 3
        for i in range(5):
            expected = hostsim.run_host(host_params(f"h{i}", seed=i))
            assert collector.results[f"h{i}"] == expected

    def test_bad_host_reports_error_not_crash(self):
        collector = Collector()
        params = host_params("bad")
        # Timestamps outside the window fail WriteTrace validation.
        params["writes"] = {"1": [10.0, 9999.0]}
        with FleetScheduler(
            jobs=1, max_retries=0,
            on_host_result=collector.host_result,
            on_host_error=collector.host_error,
        ) as scheduler:
            scheduler.submit_host(params)
            assert scheduler.join(timeout=60)
        assert "bad" in collector.errors
        assert scheduler.stats.hosts_failed == 1

    def test_submit_after_close_raises(self):
        scheduler = FleetScheduler(jobs=1)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit_host(host_params("h0"))


class TestCheckpointResume:
    def test_resume_skips_journalled_hosts(self, tmp_path):
        journal_path = str(tmp_path / "fleet.ckpt")
        first = Collector()
        with FleetScheduler(
            jobs=1, checkpoint=journal_path,
            on_host_result=first.host_result,
        ) as scheduler:
            for i in range(3):
                scheduler.submit_host(host_params(f"h{i}", seed=i))
            assert scheduler.join(timeout=120)

        second = Collector()
        with FleetScheduler(
            jobs=1, checkpoint=journal_path, resume=True,
            on_host_result=second.host_result,
        ) as scheduler:
            for i in range(4):  # 3 journalled + 1 new
                scheduler.submit_host(host_params(f"h{i}", seed=i))
            assert scheduler.join(timeout=120)
            assert scheduler.stats.units_skipped == 3
            assert scheduler.stats.units_executed == 1
        # Skipped hosts still deliver their (journalled) payloads,
        # byte-identical to the first run's.
        assert second.results == dict(first.results,
                                      h3=second.results["h3"])

    def test_interrupted_journal_is_resumable(self, tmp_path):
        """close(wait=False) drops the queue but keeps a valid journal."""
        journal_path = str(tmp_path / "fleet.ckpt")
        collector = Collector()
        scheduler = FleetScheduler(
            jobs=1, checkpoint=journal_path,
            on_host_result=collector.host_result,
        )
        scheduler.submit_host(host_params("h0", seed=0))
        scheduler.join(timeout=120)
        for i in range(1, 4):
            scheduler.submit_host(host_params(f"h{i}", seed=i))
        scheduler.close(wait=False)  # the "kill": pending work dropped
        finished = len(collector.results)
        assert finished >= 1

        resumed = Collector()
        with FleetScheduler(
            jobs=1, checkpoint=journal_path, resume=True,
            on_host_result=resumed.host_result,
        ) as scheduler:
            for i in range(4):
                scheduler.submit_host(host_params(f"h{i}", seed=i))
            assert scheduler.join(timeout=120)
            assert scheduler.stats.units_skipped >= finished
        assert sorted(resumed.results) == ["h0", "h1", "h2", "h3"]
        for host_id, payload in collector.results.items():
            assert resumed.results[host_id] == payload


class TestExperimentJobs:
    def test_fig04_table_matches_serial(self):
        serial = merge_payloads(
            "fig04",
            [execute_unit(u, quick=True, seed=1)
             for u in decompose("fig04", quick=True, seed=1)],
            quick=True, seed=1,
        ).to_text()
        collector = Collector()
        with FleetScheduler(
            jobs=1, on_job_done=collector.job_done
        ) as scheduler:
            scheduler.submit_experiment("j0", "fig04", quick=True, seed=1)
            assert scheduler.join(timeout=300)
        assert collector.jobs["j0"].to_text() == serial
        assert scheduler.stats.jobs_done == 1

    def test_unknown_experiment_reports_exception(self):
        collector = Collector()
        with FleetScheduler(
            jobs=1, on_job_done=collector.job_done
        ) as scheduler:
            scheduler.submit_experiment("j0", "no_such_experiment")
            assert scheduler.join(timeout=60)
        assert isinstance(collector.jobs["j0"], Exception)

    def test_hosts_and_experiments_interleave(self):
        collector = Collector()
        with FleetScheduler(
            jobs=1, batch_max=8,
            on_host_result=collector.host_result,
            on_job_done=collector.job_done,
        ) as scheduler:
            scheduler.submit_host(host_params("h0"))
            scheduler.submit_experiment("j0", "fig04", quick=True, seed=1)
            scheduler.submit_host(host_params("h1", seed=4))
            assert scheduler.join(timeout=300)
        assert sorted(collector.results) == ["h0", "h1"]
        assert not isinstance(collector.jobs["j0"], Exception)
