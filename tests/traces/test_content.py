"""Tests for the program memory-content generators."""

import numpy as np
import pytest

from repro.traces.content import (
    ContentProfile,
    ROW_GENERATORS,
    bit_density,
)


class TestRowGenerators:
    @pytest.mark.parametrize("name", list(ROW_GENERATORS))
    def test_correct_size(self, name):
        rng = np.random.default_rng(0)
        row = ROW_GENERATORS[name](rng, 8192)
        assert row.dtype == np.uint8
        assert len(row) == 8192

    def test_zero_rows_nearly_empty(self):
        rng = np.random.default_rng(1)
        row = ROW_GENERATORS["zero"](rng, 8192)
        assert np.unpackbits(row).mean() < 0.01

    def test_random_rows_half_density(self):
        rng = np.random.default_rng(2)
        row = ROW_GENERATORS["random"](rng, 8192)
        assert 0.47 < np.unpackbits(row).mean() < 0.53

    def test_text_rows_printable_ascii(self):
        rng = np.random.default_rng(3)
        row = ROW_GENERATORS["text"](rng, 4096)
        assert row.min() >= 32 and row.max() <= 126

    def test_int_rows_low_density(self):
        rng = np.random.default_rng(4)
        row = ROW_GENERATORS["intdata"](rng, 8192)
        assert np.unpackbits(row).mean() < 0.3

    def test_pointer_rows_share_high_bytes(self):
        rng = np.random.default_rng(5)
        row = ROW_GENERATORS["pointer"](rng, 8192)
        pointers = row.view(np.uint64)
        # High 16 bits identical across all pointers (same heap region).
        assert len(np.unique(pointers >> np.uint64(48))) == 1


class TestContentProfile:
    def test_generates_requested_rows(self):
        profile = ContentProfile("p", {"zero": 0.5, "random": 0.5})
        image = profile.generate_image(16, 512, seed=1)
        assert sorted(image) == list(range(16))
        assert all(len(data) == 512 for data in image.values())

    def test_deterministic_by_seed(self):
        profile = ContentProfile("p", {"zero": 0.5, "random": 0.5})
        assert profile.generate_image(8, 256, seed=3) == profile.generate_image(
            8, 256, seed=3
        )

    def test_mixture_controls_density(self):
        dense = ContentProfile("d", {"random": 1.0})
        sparse = ContentProfile("s", {"zero": 1.0})
        assert bit_density(dense.generate_image(8, 1024, seed=1)) > 5 * (
            bit_density(sparse.generate_image(8, 1024, seed=1)) + 0.01
        )

    def test_weights_are_normalised(self):
        # Identical mixtures up to scale produce identical images (the
        # generator seed depends on the profile name, so reuse it).
        a = ContentProfile("same", {"zero": 1.0, "random": 1.0})
        b = ContentProfile("same", {"zero": 50.0, "random": 50.0})
        assert a.generate_image(8, 256, seed=2) == b.generate_image(
            8, 256, seed=2
        )

    @pytest.mark.parametrize("mixture", [
        {},
        {"nosuch": 1.0},
        {"zero": -1.0},
        {"zero": 0.0},
    ])
    def test_invalid_mixture_raises(self, mixture):
        with pytest.raises(ValueError):
            ContentProfile("bad", mixture)

    def test_invalid_size_raises(self):
        profile = ContentProfile("p", {"zero": 1.0})
        with pytest.raises(ValueError):
            profile.generate_image(0, 512)


class TestBitDensity:
    def test_all_ones(self):
        assert bit_density({0: bytes([0xFF] * 8)}) == 1.0

    def test_all_zeros(self):
        assert bit_density({0: bytes(8)}) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bit_density({})


class TestNameSeed:
    def test_stable_across_processes(self):
        # Regression: seeding from hash(name) varied with PYTHONHASHSEED,
        # so "deterministic" images differed between interpreter runs.
        import subprocess
        import sys

        script = (
            "import hashlib\n"
            "from repro.traces.spec import BENCHMARKS\n"
            "img = BENCHMARKS['mcf'].content.generate_image(4, 256, seed=1)\n"
            "digest = hashlib.sha256(b''.join(img[i] for i in sorted(img)))\n"
            "print(digest.hexdigest())\n"
        )
        digests = set()
        for hash_seed in ("0", "1", "random"):
            env = {"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed}
            out = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, env=env, cwd=".",
            )
            assert out.returncode == 0, out.stderr
            digests.add(out.stdout.strip())
        assert len(digests) == 1

    def test_known_value(self):
        import zlib

        from repro.traces.content import name_seed

        assert name_seed("mcf") == zlib.crc32(b"mcf")
        assert 0 <= name_seed("mcf") < 1 << 32
