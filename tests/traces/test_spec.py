"""Tests for the SPEC/TPC benchmark registry."""

import pytest

from repro.traces.spec import (
    BENCHMARKS,
    FIGURE4_BENCHMARKS,
    BenchmarkProfile,
    benchmark_names,
    get_benchmark,
)
from repro.traces.content import ContentProfile


class TestRegistry:
    def test_twenty_spec_plus_two_tpc(self):
        assert len(benchmark_names("spec")) == 20
        assert len(benchmark_names("tpc")) == 2
        assert len(BENCHMARKS) == 22

    def test_figure4_lists_exactly_the_spec_benchmarks(self):
        assert len(FIGURE4_BENCHMARKS) == 20
        assert set(FIGURE4_BENCHMARKS) == set(benchmark_names("spec"))

    def test_memory_intensive_benchmarks(self):
        # mcf is famously the most memory-intensive SPEC CPU2006 workload.
        assert BENCHMARKS["mcf"].mpki > BENCHMARKS["perlbench"].mpki
        assert BENCHMARKS["mcf"].mpki > 50

    def test_content_profiles_attached(self):
        for bench in BENCHMARKS.values():
            assert isinstance(bench.content, ContentProfile)

    def test_sparse_vs_dense_content(self):
        # perlbench is the zero-heavy end, lbm the dense-float end (Fig 4).
        assert BENCHMARKS["perlbench"].content.mixture["zero"] >= 0.8
        assert BENCHMARKS["lbm"].content.mixture["floatdata"] >= 0.8

    def test_lookup(self):
        assert get_benchmark("lbm") is BENCHMARKS["lbm"]

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("doom")

    def test_names_match_keys(self):
        assert all(n == b.name for n, b in BENCHMARKS.items())


class TestValidation:
    def _content(self):
        return ContentProfile("c", {"zero": 1.0})

    @pytest.mark.parametrize("kwargs", [
        {"mpki": -1.0},
        {"row_hit_rate": 1.5},
        {"write_fraction": -0.1},
    ])
    def test_invalid_profile_raises(self, kwargs):
        base = dict(name="x", suite="spec", content=self._content(),
                    mpki=1.0, row_hit_rate=0.5, write_fraction=0.3)
        base.update(kwargs)
        with pytest.raises(ValueError):
            BenchmarkProfile(**base)
