"""Tests for trace (de)serialisation."""

import numpy as np
import pytest

from repro.traces.events import WriteTrace
from repro.traces.generator import generate_trace
from repro.traces.io import load_trace, save_trace
from repro.traces.workloads import WORKLOADS


class TestRoundtrip:
    def test_literal_trace(self, tmp_path, trace_factory):
        trace = trace_factory({0: [1.0, 2.5], 7: [9.0]}, name="lit")
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.duration_ms == trace.duration_ms
        assert loaded.total_pages == trace.total_pages
        assert loaded.name == "lit"
        assert set(loaded.writes) == {0, 7}
        for page in trace.writes:
            assert np.array_equal(loaded.writes[page], trace.writes[page])

    def test_generated_trace(self, tmp_path):
        trace = generate_trace(WORKLOADS["BlurMotion"], seed=2,
                               duration_ms=5_000.0)
        path = tmp_path / "blur.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.n_writes == trace.n_writes
        assert np.array_equal(
            loaded.all_intervals(), trace.all_intervals()
        )

    def test_empty_trace(self, tmp_path, trace_factory):
        trace = trace_factory({})
        path = tmp_path / "empty.npz"
        save_trace(trace, path)
        assert load_trace(path).n_writes == 0

    def test_non_trace_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.arange(4))
        with pytest.raises(ValueError, match="not a saved write trace"):
            load_trace(path)
