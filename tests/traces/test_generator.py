"""Tests for the synthetic write-trace generator."""

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.traces.generator import (
    clear_trace_cache,
    generate_page_writes,
    generate_trace,
    pareto_gaps,
    set_trace_cache_limit,
    trace_cache_info,
)
from repro.traces.workloads import WORKLOADS, WorkloadProfile


class TestParetoGaps:
    def test_respects_scale_minimum(self):
        rng = np.random.default_rng(0)
        gaps = pareto_gaps(rng, 1000, xm_ms=5.0, alpha=0.7)
        assert gaps.min() >= 5.0

    def test_tail_index_roughly_correct(self):
        rng = np.random.default_rng(1)
        gaps = pareto_gaps(rng, 200_000, xm_ms=1.0, alpha=0.8)
        # P(X > x) = x**-alpha: check the empirical CCDF at x = 10.
        assert np.mean(gaps > 10.0) == pytest.approx(10 ** -0.8, rel=0.1)


class TestPageWrites:
    def test_sorted_and_in_window(self):
        rng = np.random.default_rng(2)
        times = generate_page_writes(
            rng, duration_ms=5000.0, xm_ms=50.0, pareto_alpha=0.7,
            burst_extra_mean=10.0, burst_spacing_ms=0.1,
        )
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0 and times.max() < 5000.0

    def test_zero_extra_gives_single_write_episodes(self):
        rng = np.random.default_rng(3)
        times = generate_page_writes(
            rng, duration_ms=50_000.0, xm_ms=500.0, pareto_alpha=0.7,
            burst_extra_mean=0.0, burst_spacing_ms=0.1,
        )
        gaps = np.diff(times)
        # Every gap is an inter-episode Pareto gap (>= xm).
        assert np.all(gaps >= 500.0)

    def test_bursts_have_sub_ms_spacing(self):
        rng = np.random.default_rng(4)
        times = generate_page_writes(
            rng, duration_ms=10_000.0, xm_ms=100.0, pareto_alpha=0.7,
            burst_extra_mean=20.0, burst_spacing_ms=0.05,
        )
        gaps = np.diff(times)
        assert np.mean(gaps < 1.0) > 0.9

    @pytest.mark.parametrize("kwargs", [
        {"duration_ms": 0.0, "xm_ms": 1.0, "pareto_alpha": 0.7},
        {"duration_ms": 1.0, "xm_ms": 0.0, "pareto_alpha": 0.7},
        {"duration_ms": 1.0, "xm_ms": 1.0, "pareto_alpha": 0.0},
        {"duration_ms": 1.0, "xm_ms": 1.0, "pareto_alpha": 0.7,
         "burst_extra_mean": -1.0},
    ])
    def test_invalid_args_raise(self, kwargs):
        rng = np.random.default_rng(0)
        kwargs.setdefault("burst_extra_mean", 1.0)
        with pytest.raises(ValueError):
            generate_page_writes(rng, burst_spacing_ms=0.1, **kwargs)


class TestGenerateTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(WORKLOADS["BlurMotion"], seed=1,
                              duration_ms=30_000.0)

    def test_footprint_matches_profile(self, trace):
        profile = WORKLOADS["BlurMotion"]
        assert trace.total_pages == profile.n_pages
        expected_written = int(
            round(profile.n_pages * profile.written_page_fraction)
        )
        assert abs(len(trace.written_pages) - expected_written) <= 3

    def test_deterministic_for_seed(self):
        a = generate_trace(WORKLOADS["BlurMotion"], seed=9,
                           duration_ms=10_000.0)
        b = generate_trace(WORKLOADS["BlurMotion"], seed=9,
                           duration_ms=10_000.0)
        assert a.n_writes == b.n_writes
        for page in a.writes:
            assert np.array_equal(a.writes[page], b.writes[page])

    def test_seeds_differ(self):
        a = generate_trace(WORKLOADS["BlurMotion"], seed=1,
                           duration_ms=10_000.0)
        b = generate_trace(WORKLOADS["BlurMotion"], seed=2,
                           duration_ms=10_000.0)
        assert a.n_writes != b.n_writes

    def test_sub_ms_write_fraction(self, trace):
        intervals = trace.all_intervals()
        assert np.mean(intervals < 1.0) > 0.9

    def test_time_dominated_by_long_intervals(self, trace):
        intervals = trace.all_intervals(include_trailing=True)
        long_time = intervals[intervals >= 1024.0].sum()
        assert long_time / intervals.sum() > 0.75

    def test_duration_override(self):
        trace = generate_trace(WORKLOADS["Netflix"], seed=1,
                               duration_ms=5_000.0)
        assert trace.duration_ms == 5_000.0
        for times in trace.writes.values():
            assert times.max() < 5_000.0


class TestTraceCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        previous = set_trace_cache_limit(32)
        clear_trace_cache()
        yield
        set_trace_cache_limit(previous)
        clear_trace_cache()

    def test_repeat_call_hits_cache(self):
        a = generate_trace(WORKLOADS["Netflix"], seed=4, duration_ms=2_000.0)
        b = generate_trace(WORKLOADS["Netflix"], seed=4, duration_ms=2_000.0)
        assert a is b

    def test_limit_is_configurable_and_evicts_lru(self):
        set_trace_cache_limit(2)
        first = generate_trace(WORKLOADS["Netflix"], seed=5,
                               duration_ms=1_000.0)
        generate_trace(WORKLOADS["BlurMotion"], seed=5, duration_ms=1_000.0)
        # Touch Netflix so BlurMotion becomes LRU, then overflow.
        assert generate_trace(WORKLOADS["Netflix"], seed=5,
                              duration_ms=1_000.0) is first
        generate_trace(WORKLOADS["SystemMgt"], seed=5, duration_ms=1_000.0)
        assert trace_cache_info()["size"] == 2
        assert generate_trace(WORKLOADS["Netflix"], seed=5,
                              duration_ms=1_000.0) is first
        fresh = generate_trace(WORKLOADS["BlurMotion"], seed=5,
                               duration_ms=1_000.0)
        again = generate_trace(WORKLOADS["BlurMotion"], seed=5,
                               duration_ms=1_000.0)
        assert fresh is again

    def test_zero_limit_disables_caching(self):
        set_trace_cache_limit(0)
        a = generate_trace(WORKLOADS["Netflix"], seed=6, duration_ms=1_000.0)
        b = generate_trace(WORKLOADS["Netflix"], seed=6, duration_ms=1_000.0)
        assert a is not b
        assert trace_cache_info() == {"size": 0, "limit": 0}

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            set_trace_cache_limit(-1)

    def test_profile_subclass_never_aliases(self):
        class ShadowProfile(WorkloadProfile):
            pass

        base = WORKLOADS["Netflix"]
        shadow = ShadowProfile(**dataclasses.asdict(base))
        generate_trace(base, seed=7, duration_ms=1_000.0)
        a = generate_trace(shadow, seed=7, duration_ms=1_000.0)
        b = generate_trace(shadow, seed=7, duration_ms=1_000.0)
        # Subclasses opt out of the cache entirely: never served a
        # WorkloadProfile's entry, never cached themselves.
        assert a is not b

    def test_hit_miss_metrics(self):
        registry = obs.MetricsRegistry(enabled=True)
        previous = obs.set_registry(registry)
        try:
            generate_trace(WORKLOADS["Netflix"], seed=8, duration_ms=1_000.0)
            generate_trace(WORKLOADS["Netflix"], seed=8, duration_ms=1_000.0)
            generate_trace(WORKLOADS["Netflix"], seed=9, duration_ms=1_000.0)
            assert registry.counter("traces.cache_hits").value == 1
            assert registry.counter("traces.cache_misses").value == 2
            assert registry.gauge("traces.cache_size").value == 2
        finally:
            obs.set_registry(previous)
