"""Tests for phase-resolved content traces."""

import pytest

from repro.traces.content import ContentProfile
from repro.traces.phases import ContentTrace, generate_content_trace


@pytest.fixture
def profile():
    return ContentProfile("phased", {"zero": 0.4, "random": 0.6})


class TestGeneration:
    def test_phase_count_and_rows(self, profile):
        trace = generate_content_trace(profile, n_rows=16, row_bytes=256,
                                       n_phases=4, seed=1)
        assert len(trace) == 4
        assert trace.n_rows == 16
        for snapshot in trace:
            assert sorted(snapshot.image) == list(range(16))
            assert all(len(d) == 256 for d in snapshot.image.values())

    def test_instruction_counters_accumulate(self, profile):
        trace = generate_content_trace(profile, 8, 128, n_phases=3,
                                       instructions_per_phase=100, seed=1)
        assert [s.instructions for s in trace] == [100, 200, 300]

    def test_churn_rewrites_expected_fraction(self, profile):
        trace = generate_content_trace(profile, n_rows=20, row_bytes=256,
                                       n_phases=3, churn_fraction=0.25,
                                       seed=2)
        first, second = trace[0], trace[1]
        changed = sum(
            1 for row in range(20)
            if first.image[row] != second.image[row]
        )
        # 25% of 20 rows = 5 rewritten (some rewrites may coincide by
        # chance; the recorded count is exact).
        assert second.rows_changed == 5
        assert changed <= 5

    def test_unchurned_rows_identical(self, profile):
        trace = generate_content_trace(profile, n_rows=20, row_bytes=256,
                                       n_phases=2, churn_fraction=0.25,
                                       seed=3)
        identical = sum(
            1 for row in range(20)
            if trace[0].image[row] == trace[1].image[row]
        )
        assert identical >= 15

    def test_zero_churn_freezes_content(self, profile):
        trace = generate_content_trace(profile, 8, 128, n_phases=3,
                                       churn_fraction=0.0, seed=4)
        assert trace[0].image == trace[2].image
        assert trace.churn_fractions() == [1.0, 0.0, 0.0]

    def test_full_churn_replaces_everything(self, profile):
        trace = generate_content_trace(profile, 8, 256, n_phases=2,
                                       churn_fraction=1.0, seed=5)
        differing = sum(
            1 for row in range(8)
            if trace[0].image[row] != trace[1].image[row]
        )
        assert differing >= 6  # zero-type redraws can collide

    def test_deterministic(self, profile):
        a = generate_content_trace(profile, 8, 128, seed=6)
        b = generate_content_trace(profile, 8, 128, seed=6)
        for snap_a, snap_b in zip(a, b):
            assert snap_a.image == snap_b.image

    @pytest.mark.parametrize("kwargs", [
        {"n_phases": 0},
        {"churn_fraction": 1.5},
        {"instructions_per_phase": 0},
    ])
    def test_invalid_args_raise(self, profile, kwargs):
        with pytest.raises(ValueError):
            generate_content_trace(profile, 8, 128, **kwargs)


class TestContainer:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ContentTrace([])

    def test_mismatched_rows_rejected(self, profile):
        a = generate_content_trace(profile, 8, 128, n_phases=1, seed=1)
        b = generate_content_trace(profile, 16, 128, n_phases=1, seed=1)
        with pytest.raises(ValueError, match="same rows"):
            ContentTrace([a[0], b[0]])
