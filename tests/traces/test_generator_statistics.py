"""Statistical conformance of generated traces to the paper's targets.

Heavier than the unit tests in test_generator.py: checks, per sampled
workload, the paper's headline trace statistics on a reduced window.
"""

import numpy as np
import pytest

from repro.analysis import fit_pareto, time_in_long_intervals
from repro.core import MemconConfig, simulate_refresh_reduction
from repro.traces.generator import generate_trace
from repro.traces.workloads import WORKLOADS

SAMPLED = ("ACBrotherHood", "Netflix", "SystemMgt", "VideoEncode")
WINDOW_MS = 40_000.0


@pytest.fixture(scope="module")
def traces():
    return {
        name: generate_trace(WORKLOADS[name], seed=1, duration_ms=WINDOW_MS)
        for name in SAMPLED
    }


class TestPaperTraceTargets:
    @pytest.mark.parametrize("name", SAMPLED)
    def test_sub_ms_write_majority(self, traces, name):
        """Paper Fig. 7: >95% of writes within 1 ms."""
        intervals = traces[name].all_intervals()
        assert np.mean(intervals < 1.0) > 0.94

    @pytest.mark.parametrize("name", SAMPLED)
    def test_long_intervals_rare_by_count(self, traces, name):
        """Paper Fig. 7: long intervals are a tiny fraction of writes."""
        intervals = traces[name].all_intervals()
        assert np.mean(intervals >= 1024.0) < 0.02

    @pytest.mark.parametrize("name", SAMPLED)
    def test_pareto_tail_quality(self, traces, name):
        """Paper Fig. 8: log-log CCDF linear with R^2 >= 0.93."""
        trace = traces[name]
        intervals = trace.all_intervals()
        fit = fit_pareto(
            intervals[intervals >= 2.0], x_min=2.0,
            x_max=trace.duration_ms / 40,
        )
        assert fit.r_squared > 0.93
        assert 0.2 < fit.alpha < 1.2

    @pytest.mark.parametrize("name", SAMPLED)
    def test_time_dominated_by_long_intervals(self, traces, name):
        """Paper Fig. 9: >=1024 ms intervals hold most interval time."""
        assert time_in_long_intervals(traces[name]) > 0.80

    @pytest.mark.parametrize("name", SAMPLED)
    def test_refresh_reduction_in_band(self, traces, name):
        """Paper Fig. 14: MEMCON reduction in the 55-75% band."""
        report = simulate_refresh_reduction(
            traces[name], MemconConfig(quantum_ms=1024.0),
            failing_page_fraction=0.02, seed=1,
        )
        assert 0.55 < report.refresh_reduction < 0.75

    def test_workloads_differ_from_each_other(self, traces):
        """Per-app calibration should produce distinct statistics."""
        counts = {name: trace.n_writes for name, trace in traces.items()}
        assert len(set(counts.values())) == len(counts)
