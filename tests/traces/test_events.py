"""Tests for the write-trace container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traces.events import WriteTrace


class TestValidation:
    def test_unsorted_timestamps_raise(self, trace_factory):
        with pytest.raises(ValueError, match="sorted"):
            trace_factory({0: [5.0, 1.0]})

    def test_timestamp_past_window_raises(self, trace_factory):
        with pytest.raises(ValueError, match="outside"):
            trace_factory({0: [10_000.0]}, duration_ms=10_000.0)

    def test_negative_timestamp_raises(self, trace_factory):
        with pytest.raises(ValueError, match="outside"):
            trace_factory({0: [-1.0]})

    def test_more_written_pages_than_total_raises(self, trace_factory):
        with pytest.raises(ValueError, match="total_pages"):
            trace_factory({i: [1.0] for i in range(17)}, total_pages=16)

    def test_non_positive_duration_raises(self, trace_factory):
        with pytest.raises(ValueError):
            trace_factory({}, duration_ms=0.0)


class TestAccessors:
    def test_written_pages_excludes_empty(self, trace_factory):
        trace = trace_factory({0: [1.0], 1: [], 2: [2.0]})
        assert trace.written_pages == [0, 2]

    def test_n_writes(self, trace_factory):
        trace = trace_factory({0: [1.0, 2.0], 2: [3.0]})
        assert trace.n_writes == 3

    def test_read_only_pages(self, trace_factory):
        trace = trace_factory({0: [1.0]}, total_pages=16)
        assert trace.read_only_pages == 15

    def test_merged_events_globally_sorted(self, trace_factory):
        trace = trace_factory({0: [5.0, 9.0], 1: [1.0, 7.0]})
        events = list(trace.merged_events())
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert events[0] == (1.0, 1)


class TestIntervals:
    def test_page_intervals(self, trace_factory):
        trace = trace_factory({0: [1.0, 4.0, 9.0]})
        assert list(trace.page_intervals(0)) == [3.0, 5.0]

    def test_trailing_interval_appended(self, trace_factory):
        trace = trace_factory({0: [1.0, 4.0]}, duration_ms=10.0)
        assert list(trace.page_intervals(0, include_trailing=True)) == [
            3.0, 6.0,
        ]

    def test_single_write_has_no_closed_interval(self, trace_factory):
        trace = trace_factory({0: [3.0]})
        assert len(trace.page_intervals(0)) == 0

    def test_unwritten_page_empty(self, trace_factory):
        trace = trace_factory({0: [1.0]})
        assert len(trace.page_intervals(5)) == 0

    def test_all_intervals_pools_pages(self, trace_factory):
        trace = trace_factory({0: [0.0, 2.0], 1: [0.0, 5.0]})
        assert sorted(trace.all_intervals()) == [2.0, 5.0]

    def test_all_intervals_empty_when_no_writes(self, trace_factory):
        trace = trace_factory({})
        assert len(trace.all_intervals()) == 0


class TestScaledIntervals:
    def test_halving_halves_gaps(self, trace_factory):
        trace = trace_factory({0: [100.0, 300.0, 700.0]})
        halved = trace.scaled_intervals(0.5)
        assert list(halved.writes[0]) == [100.0, 200.0, 400.0]

    def test_first_write_time_preserved(self, trace_factory):
        trace = trace_factory({0: [42.0, 50.0]})
        assert trace.scaled_intervals(0.5).writes[0][0] == 42.0

    def test_doubling_drops_writes_past_window(self, trace_factory):
        trace = trace_factory({0: [100.0, 6000.0]}, duration_ms=10_000.0)
        doubled = trace.scaled_intervals(2.0)
        assert list(doubled.writes[0]) == [100.0]

    def test_invalid_factor_raises(self, trace_factory):
        trace = trace_factory({0: [1.0]})
        with pytest.raises(ValueError):
            trace.scaled_intervals(0.0)

    @given(st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_scaling_preserves_write_count_when_shrinking(self, factor):
        trace = WriteTrace(
            duration_ms=1000.0,
            writes={0: np.array([10.0, 200.0, 900.0])},
            total_pages=4,
        )
        scaled = trace.scaled_intervals(factor)
        assert len(scaled.writes[0]) == 3
        intervals = np.diff(scaled.writes[0])
        expected = np.diff(trace.writes[0]) * factor
        assert np.allclose(intervals, expected)
