"""Tests for the Table 1 workload registry."""

import pytest

from repro.traces.workloads import (
    REPRESENTATIVE_WORKLOADS,
    WORKLOADS,
    WorkloadProfile,
    get_workload,
    workload_names,
)


class TestRegistry:
    def test_twelve_workloads(self):
        assert len(WORKLOADS) == 12

    def test_representative_subset(self):
        assert set(REPRESENTATIVE_WORKLOADS) <= set(WORKLOADS)
        assert REPRESENTATIVE_WORKLOADS == (
            "ACBrotherHood", "Netflix", "SystemMgt",
        )

    # Spot-check the published Table 1 facts.
    @pytest.mark.parametrize("name,runtime,mem,threads", [
        ("ACBrotherHood", 209.1, 2.8, 8),
        ("AllSysMark", 2064.0, 3.4, 4),
        ("Netflix", 229.4, 4.6, 2),
        ("SystemMgt", 466.2, 7.6, 2),
        ("VideoEncode", 299.1, 7.3, 4),
    ])
    def test_table1_values(self, name, runtime, mem, threads):
        profile = WORKLOADS[name]
        assert profile.runtime_s == runtime
        assert profile.mem_gb == mem
        assert profile.threads == threads

    def test_names_match_keys(self):
        assert all(name == p.name for name, p in WORKLOADS.items())

    def test_lookup(self):
        assert get_workload("Netflix") is WORKLOADS["Netflix"]

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("Quake")

    def test_workload_names_order(self):
        assert workload_names()[0] == "ACBrotherHood"
        assert len(workload_names()) == 12

    def test_duration_capped_at_two_minutes(self):
        assert WORKLOADS["AllSysMark"].duration_ms == 120_000.0
        assert WORKLOADS["FinalCutPro"].duration_ms == 76_900.0


class TestProfileValidation:
    def _base(self, **overrides):
        kwargs = dict(name="x", app_type="t", runtime_s=10.0,
                      mem_gb=1.0, threads=1)
        kwargs.update(overrides)
        return kwargs

    @pytest.mark.parametrize("overrides", [
        {"runtime_s": 0.0},
        {"n_pages": 0},
        {"written_page_fraction": 1.5},
        {"streaming_page_fraction": -0.1},
        {"pareto_alpha": 0.0},
        {"stream_xm_lo_ms": 0.0},
        {"regular_xm_lo_ms": 100.0, "regular_xm_hi_ms": 50.0},
        {"burst_length_mean": -1.0},
        {"burst_spacing_ms": 0.0},
    ])
    def test_invalid_profiles_raise(self, overrides):
        with pytest.raises(ValueError):
            WorkloadProfile(**self._base(**overrides))
