"""Backend resolution, env override, fallback and warm-up contracts."""

import numpy as np
import pytest

from repro import kernels, obs
from repro.kernels import _compile

from .conftest import requires_numba


class TestResolution:
    def teardown_method(self):
        kernels.set_backend(None)

    def test_auto_resolves_to_python_or_numba(self):
        resolved = kernels.resolve_backend("auto")
        expected = "numba" if kernels.numba_available() else "python"
        assert resolved == expected

    def test_explicit_python_and_pyfunc_always_resolve(self):
        assert kernels.resolve_backend("python") == "python"
        assert kernels.resolve_backend("pyfunc") == "pyfunc"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernels backend"):
            kernels.resolve_backend("cuda")

    def test_numba_request_raises_when_unavailable(self):
        if kernels.numba_available():
            assert kernels.resolve_backend("numba") == "numba"
        else:
            with pytest.raises(RuntimeError, match="numba"):
                kernels.resolve_backend("numba")

    def test_env_override_feeds_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "pyfunc")
        assert kernels.set_backend(None) == "pyfunc"
        assert kernels.engaged()
        monkeypatch.delenv("REPRO_KERNELS")
        assert kernels.set_backend(None) in ("python", "numba")

    def test_set_backend_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "pyfunc")
        assert kernels.set_backend("python") == "python"
        assert not kernels.engaged()

    def test_python_backend_not_engaged(self):
        kernels.set_backend("python")
        assert not kernels.engaged()

    def test_jit_disabled_env_parsing(self, monkeypatch):
        monkeypatch.delenv("NUMBA_DISABLE_JIT", raising=False)
        assert not _compile._jit_disabled()
        monkeypatch.setenv("NUMBA_DISABLE_JIT", "1")
        assert _compile._jit_disabled()
        monkeypatch.setenv("NUMBA_DISABLE_JIT", "0")
        assert not _compile._jit_disabled()

    @requires_numba
    def test_disable_jit_downgrades_auto(self, monkeypatch):
        monkeypatch.setenv("NUMBA_DISABLE_JIT", "1")
        assert kernels.resolve_backend("auto") == "python"


class TestMaybeNjit:
    def test_py_func_attribute_always_present(self):
        from repro.kernels.faultpred import _predicate_kernel

        assert callable(_predicate_kernel.py_func)

    def test_impl_unwraps_for_pyfunc(self):
        from repro.kernels.eventheap import _heap_push

        kernels.set_backend("pyfunc")
        try:
            assert kernels.impl(_heap_push) is _heap_push.py_func
        finally:
            kernels.set_backend(None)


class TestWarmup:
    def teardown_method(self):
        kernels.set_backend(None)

    def test_warmup_noop_off_numba(self):
        kernels.set_backend("python")
        assert kernels.warmup() == 0.0
        kernels.set_backend("pyfunc")
        assert kernels.warmup() == 0.0

    @requires_numba
    def test_warmup_records_gauge_under_numba(self):
        registry = obs.MetricsRegistry(enabled=True)
        previous = obs.set_registry(registry)
        try:
            kernels.set_backend("numba")
            elapsed = kernels.warmup()
            assert elapsed >= 0.0
            assert kernels.warmup() == elapsed  # idempotent
            snapshot = registry.snapshot()
            assert kernels.WARMUP_GAUGE in snapshot["gauges"]
        finally:
            obs.set_registry(previous)

    def test_backend_info_shape(self):
        info = kernels.backend_info()
        assert set(info) == {
            "backend", "numba_available", "numba_version", "warmup_s"
        }
        assert info["backend"] in ("numba", "python", "pyfunc")


class TestStandaloneSchedulerUnaffected:
    def test_engaged_backend_without_attach_uses_python_path(self):
        # A scheduler nobody attached bank arrays to must behave (and
        # pick) through the oracle path even when a backend is engaged.
        from repro.mc.bank import BankState
        from repro.mc.request import Request, RequestKind
        from repro.mc.scheduler import FrFcfsScheduler

        kernels.set_backend("pyfunc")
        try:
            scheduler = FrFcfsScheduler()
            banks = [BankState() for _ in range(2)]
            scheduler.enqueue(Request(
                kind=RequestKind.READ, core=0, bank=1, row=7, arrival_ns=0.0
            ))
            picked = scheduler.next_request(banks, 10.0)
            assert picked is not None and picked.row == 7
        finally:
            kernels.set_backend(None)


def test_flat_heap_rejects_bad_actor_count():
    from repro.kernels.eventheap import FlatEventHeap

    with pytest.raises(ValueError):
        FlatEventHeap(0)


def test_kernel_ring_compacts_and_grows():
    from repro.kernels.sched import KindRing

    ring = KindRing(capacity=4)
    ready = np.zeros(1, dtype=np.float64)
    open_rows = np.full(1, -1, dtype=np.int64)
    done = np.zeros(1, dtype=np.bool_)
    for seq in range(100):
        ring.append(seq, 0, seq % 5, 0.0)
        if seq % 2 == 0:
            ring.kill_seq(seq)
    assert ring.live == 50
    kernels.set_backend("pyfunc")
    try:
        slot = ring.pick(ready, open_rows, done, 100.0)
        assert int(ring.seqs[slot]) == 1  # oldest surviving entry
    finally:
        kernels.set_backend(None)
