"""End-to-end gate: backends must not change a single output byte.

Runs real experiments through the CLI under the oracle backend and each
engaged kernel backend, at ``--jobs 1`` and ``--jobs 2``, and compares
the emitted result tables byte for byte. Also pins the traced simulator
event stream — not just the aggregate results — across backends.
"""

import json
from dataclasses import asdict

import pytest

from repro import kernels, obs
from repro.experiments.runner import main
from repro.mc.controller import RefreshSettings, TestTrafficSettings
from repro.sim.system import SystemConfig, SystemSimulator
from repro.traces.spec import get_benchmark

from .conftest import ENGAGED_BACKENDS

#: Cheap-but-real experiment pair: fig04 exercises the content-fault
#: predicate sweep, hammer01 the disturbance channel + system simulator.
EXPERIMENTS = ["fig04", "hammer01"]


@pytest.fixture(autouse=True)
def _restore_backend(monkeypatch):
    """The runner writes $REPRO_KERNELS; keep it out of other tests."""
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    yield
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    kernels.set_backend(None)


def _run_tables(tmp_path, backend, jobs, tag):
    out = tmp_path / f"{tag}.md"
    manifest = tmp_path / f"{tag}.manifest.json"
    argv = EXPERIMENTS + [
        "--out", str(out),
        "--manifest", str(manifest),
        "--jobs", str(jobs),
        "--backend", backend,
    ]
    assert main(argv) == 0
    kernels.set_backend(None)
    return out.read_bytes(), json.loads(manifest.read_text())


class TestTablesByteIdentical:
    def test_across_backends_and_job_counts(self, tmp_path, capsys):
        expected, manifest = _run_tables(tmp_path, "python", 1, "oracle")
        assert manifest["config"]["kernels"]["backend"] == "python"
        for backend in ENGAGED_BACKENDS:
            for jobs in (1, 2):
                got, manifest = _run_tables(
                    tmp_path, backend, jobs, f"{backend}-j{jobs}"
                )
                assert got == expected, (backend, jobs)
                assert manifest["config"]["kernels"]["backend"] == backend

    def test_manifest_records_backend_and_warmup(self, tmp_path, capsys):
        _, manifest = _run_tables(tmp_path, "pyfunc", 1, "info")
        info = manifest["config"]["kernels"]
        assert info["backend"] == "pyfunc"
        assert info["numba_available"] == kernels.numba_available()
        assert info["warmup_s"] == 0.0  # only the numba backend compiles


class TestTracedStreamsIdentical:
    def _traced_run(self, backend, seed):
        kernels.set_backend(backend)
        try:
            if backend == "numba":
                kernels.warmup()
            config = SystemConfig(
                channels=2,
                refresh=RefreshSettings(base_interval_ms=16.0),
                test_traffic=TestTrafficSettings(concurrent_tests=2),
            )
            simulator = SystemSimulator(
                [get_benchmark("mcf"), get_benchmark("gcc")],
                config, seed=seed,
            )
            sink = obs.ListTraceSink()
            previous = obs.set_sink(sink)
            try:
                result = simulator.run(20_000.0)
            finally:
                obs.set_sink(previous)
            summary = {
                "window_ns": result.window_ns,
                "cores": [asdict(core) for core in result.cores],
                "refreshes_issued": result.refreshes_issued,
                "refresh_busy_fraction": result.refresh_busy_fraction,
                "row_hit_rate": result.row_hit_rate,
            }
            return summary, sink.records
        finally:
            kernels.set_backend(None)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_event_stream_matches_oracle(self, seed):
        expected = self._traced_run("python", seed)
        for backend in ENGAGED_BACKENDS:
            got = self._traced_run(backend, seed)
            assert got[0] == expected[0], backend
            assert got[1] == expected[1], backend
