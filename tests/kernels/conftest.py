"""Shared fixtures for the cross-backend kernel equivalence suites.

Every suite here compares an *engaged* kernels backend against the
``python`` oracle. ``pyfunc`` (the interpreted kernel paths) is always
testable; ``numba`` legs materialize only where numba is installed —
parametrization simply omits them elsewhere, so the suites auto-skip
rather than fail on a python-only machine (this repo's CI has both
legs).
"""

import pytest

from repro import kernels

#: Engaged backends testable in this environment.
ENGAGED_BACKENDS = ["pyfunc"] + (
    ["numba"] if kernels.numba_available() else []
)

requires_numba = pytest.mark.skipif(
    not kernels.numba_available(),
    reason="numba not installed (pip install repro[kernels])",
)


@pytest.fixture(params=ENGAGED_BACKENDS)
def kernel_backend(request):
    """Each engaged backend in turn; the oracle backend is restored."""
    backend = kernels.set_backend(request.param)
    if backend == "numba":
        kernels.warmup()
    yield backend
    kernels.set_backend(None)


@pytest.fixture
def python_backend():
    """Force the oracle backend for the duration of a test."""
    kernels.set_backend("python")
    yield "python"
    kernels.set_backend(None)
