"""FlatEventHeap vs EventHeap — identical drains under random scripts.

The flat heap stores entries in typed arrays and pops via njit kernels,
but every live entry is unique under the ``(time, actor, version)``
order, so its observable behaviour (current / prune order / next_time /
len) must be indistinguishable from the heapq-backed oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.kernels.eventheap import FlatEventHeap
from repro.sim.events import EventHeap

from .conftest import ENGAGED_BACKENDS


def _run_script(seed, n_actors, steps, backend):
    rng = np.random.default_rng(seed)
    kernels.set_backend(backend)
    try:
        if backend == "numba":
            kernels.warmup()
        subject = FlatEventHeap(n_actors, capacity=4)  # force growth
        oracle = EventHeap()
        now = 0.0
        for _ in range(steps):
            op = rng.integers(5)
            actor = int(rng.integers(n_actors))
            if op <= 1:
                t = now + float(rng.uniform(0.0, 20.0))
                subject.push(actor, t)
                oracle.push(actor, t)
            elif op == 2:
                subject.invalidate(actor)
                oracle.invalidate(actor)
            elif op == 3:
                now += float(rng.uniform(0.0, 10.0))
                assert subject.prune_due(now) == oracle.prune_due(now)
            else:
                default = now + 1e9
                assert subject.next_time(default) == oracle.next_time(default)
            assert subject.current(actor) == oracle.current(actor)
            assert len(subject) == len(oracle)
        # Final drain: every remaining posted time comes out in the same
        # order from both heaps.
        assert subject.prune_due(float("inf")) == oracle.prune_due(float("inf"))
        assert len(subject) == len(oracle) == 0
    finally:
        kernels.set_backend(None)


@pytest.mark.parametrize("backend", ENGAGED_BACKENDS)
class TestHeapEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n_actors=st.integers(1, 12))
    def test_random_scripts(self, backend, seed, n_actors):
        _run_script(seed, n_actors, steps=150, backend=backend)

    def test_repost_same_time_consumes_latest_version(self, backend):
        kernels.set_backend(backend)
        try:
            heap = FlatEventHeap(2)
            heap.push(0, 5.0)
            heap.push(0, 5.0)  # re-post at the identical time
            heap.push(1, 5.0)
            assert heap.prune_due(5.0) == [0, 1]
            assert heap.prune_due(5.0) == []
        finally:
            kernels.set_backend(None)

    def test_next_time_discards_stale_entries(self, backend):
        kernels.set_backend(backend)
        try:
            heap = FlatEventHeap(3)
            heap.push(0, 1.0)
            heap.push(1, 2.0)
            heap.invalidate(0)
            assert heap.next_time(99.0) == 2.0
            heap.invalidate(1)
            assert heap.next_time(99.0) == 99.0
            assert len(heap) == 0
        finally:
            kernels.set_backend(None)
