"""Kernel fault predicate vs the numpy oracle — bit-identical masks.

Every query here runs once under the ``python`` oracle backend and once
per engaged kernel backend; results must match element-for-element,
dtype included. Covers the full predicate surface the kernels replace:
single-row masks, batched shared/per-row content, scalar and per-row
``disturb_stress`` composition, and the disturbance dose/charge check.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.dram.disturb import DisturbMap, DisturbModelConfig
from repro.dram.faults import FaultMap, FaultModelConfig

from .conftest import ENGAGED_BACKENDS

DENSE = FaultModelConfig(vulnerable_cell_rate=5e-3)
HAMMER_DENSE = DisturbModelConfig(hammer_vulnerable_rate=5e-3)
WIDTH = 256
ROWS = 64
INTERVALS = [64.0, 328.0, 1024.0, 4096.0]


def _under(backend, fn):
    kernels.set_backend(backend)
    try:
        if backend == "numba":
            kernels.warmup()
        return fn()
    finally:
        kernels.set_backend(None)


def _assert_all_backends_match(fn):
    """Run ``fn`` under the oracle and every engaged backend; compare."""
    expected = _under("python", fn)
    for backend in ENGAGED_BACKENDS:
        got = _under(backend, fn)
        for exp, act in zip(expected, got):
            exp = np.asarray(exp)
            act = np.asarray(act)
            assert act.dtype == exp.dtype, backend
            np.testing.assert_array_equal(act, exp, err_msg=backend)


def _content(seed, shape):
    return np.random.default_rng(seed).integers(
        0, 2, size=shape, dtype=np.uint8
    )


class TestFailingMask:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        content_seed=st.integers(0, 2**32 - 1),
        interval=st.sampled_from(INTERVALS),
        stress=st.sampled_from([0.0, 0.25, 1.5]),
    )
    def test_single_row_mask(self, seed, content_seed, interval, stress):
        fault_map = FaultMap(ROWS, WIDTH, DENSE, seed=seed)
        bits = _content(content_seed, WIDTH)
        _assert_all_backends_match(lambda: [
            fault_map.failing_mask(row, bits, interval, stress)
            for row in range(0, ROWS, 7)
        ])

    def test_structured_patterns(self):
        fault_map = FaultMap(ROWS, WIDTH, DENSE, seed=11)
        patterns = [
            np.zeros(WIDTH, dtype=np.uint8),
            np.ones(WIDTH, dtype=np.uint8),
            np.tile([0, 1], WIDTH // 2).astype(np.uint8),
            np.tile([1, 0], WIDTH // 2).astype(np.uint8),
        ]
        _assert_all_backends_match(lambda: [
            fault_map.failing_mask(row, bits, 328.0)
            for bits in patterns for row in range(ROWS)
        ])


class TestBatchedPredicate:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        content_seed=st.integers(0, 2**32 - 1),
        interval=st.sampled_from(INTERVALS),
        per_row_bits=st.booleans(),
        stress_kind=st.sampled_from(["none", "scalar", "per_row"]),
    )
    def test_rows_fail_and_cells_batch(
        self, seed, content_seed, interval, per_row_bits, stress_kind
    ):
        fault_map = FaultMap(ROWS, WIDTH, DENSE, seed=seed)
        rows = np.arange(0, ROWS, 3)
        rng = np.random.default_rng(content_seed)
        shape = (len(rows), WIDTH) if per_row_bits else WIDTH
        bits = _content(content_seed, shape)
        if stress_kind == "none":
            stress = None
        elif stress_kind == "scalar":
            stress = float(rng.uniform(0.0, 2.0))
        else:
            stress = rng.uniform(0.0, 2.0, size=len(rows))

        def run():
            fails = fault_map.rows_fail(rows, bits, interval, stress)
            cell_rows, cell_cols = fault_map.failing_cells_batch(
                rows, bits, interval, stress
            )
            return [fails, cell_rows, cell_cols]

        _assert_all_backends_match(run)

    def test_per_row_stress_on_single_row_mask_raises_everywhere(self):
        fault_map = FaultMap(ROWS, WIDTH, DENSE, seed=1)
        bits = np.ones(WIDTH, dtype=np.uint8)
        stress = np.array([0.5, 0.5])
        for backend in ["python"] + ENGAGED_BACKENDS:
            kernels.set_backend(backend)
            try:
                with pytest.raises(ValueError,
                                   match="per-row disturb_stress"):
                    fault_map.failing_mask(0, bits, 328.0, stress)
            finally:
                kernels.set_backend(None)

    def test_oversized_columns_are_invalid_on_every_backend(self):
        # A narrower content row than the population's geometry: columns
        # beyond the content width must never fail.
        fault_map = FaultMap(ROWS, WIDTH, DENSE, seed=7)
        bits = np.ones(WIDTH // 4, dtype=np.uint8)
        rows = np.arange(ROWS)
        _assert_all_backends_match(lambda: [
            fault_map.rows_fail(rows, bits, 64.0),
            *fault_map.failing_cells_batch(rows, bits, 64.0),
        ])


class TestDisturbHit:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        content_seed=st.integers(0, 2**32 - 1),
        interval=st.sampled_from(INTERVALS),
        content_kind=st.sampled_from(["none", "shared", "per_row"]),
        scale=st.sampled_from([0.1, 1.0, 10.0]),
    )
    def test_flips_match(
        self, seed, content_seed, interval, content_kind, scale
    ):
        disturb_map = DisturbMap(ROWS, WIDTH, HAMMER_DENSE, seed=seed)
        rows = np.arange(0, ROWS, 2)
        rng = np.random.default_rng(content_seed)
        pressures = rng.uniform(0.0, HAMMER_DENSE.hc_first * 2 * scale,
                                size=len(rows))
        if content_kind == "none":
            bits = None
        elif content_kind == "shared":
            bits = _content(content_seed, WIDTH)
        else:
            bits = _content(content_seed, (len(rows), WIDTH))

        def run():
            flip_rows, flip_cols = disturb_map.flips(
                rows, pressures, interval, bits
            )
            return [
                flip_rows, flip_cols,
                disturb_map.rows_flip(rows, pressures, interval, bits),
            ]

        _assert_all_backends_match(run)

    def test_narrow_content_invalidates_wide_columns(self):
        disturb_map = DisturbMap(ROWS, WIDTH, HAMMER_DENSE, seed=3)
        rows = np.arange(ROWS)
        pressures = np.full(len(rows), HAMMER_DENSE.hc_first * 100.0)
        bits = np.ones(WIDTH // 4, dtype=np.uint8)
        _assert_all_backends_match(
            lambda: list(disturb_map.flips(rows, pressures, 64.0, bits))
        )
