"""Kernel FR-FCFS pick / earliest-issue vs the per-bank python scan.

Two schedulers consume one randomized request/bank-state script: the
subject has kernel bank-state arrays attached (so picks go through the
ring-scan kernel), the oracle does not. Every pick, rejection and
earliest-issue answer must match exactly — the property the global
seq-ordered scan's equivalence argument rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.mc.bank import BankState
from repro.mc.request import Request, RequestKind
from repro.mc.scheduler import FrFcfsScheduler, SchedulerConfig

from .conftest import ENGAGED_BACKENDS

KINDS = [RequestKind.READ, RequestKind.WRITE, RequestKind.TEST]


def _request(rng, n_banks, now):
    return dict(
        kind=KINDS[int(rng.integers(len(KINDS)))],
        core=int(rng.integers(0, 4)),
        bank=int(rng.integers(n_banks)),
        row=int(rng.integers(0, 8)),
        arrival_ns=float(now + rng.uniform(0.0, 50.0)),
    )


def _fields(request):
    if request is None:
        return None
    return (request.kind, request.core, request.bank, request.row,
            request.arrival_ns)


def _run_script(seed, n_banks, steps, drain_threshold, backend):
    """Drive subject (kernel) and oracle schedulers through one script."""
    rng = np.random.default_rng(seed)
    config = SchedulerConfig(write_queue_drain_threshold=drain_threshold)
    banks = [BankState() for _ in range(n_banks)]
    ready = np.zeros(n_banks, dtype=np.float64)
    open_rows = np.full(n_banks, -1, dtype=np.int64)
    kernels.set_backend(backend)
    try:
        if backend == "numba":
            kernels.warmup()
        subject = FrFcfsScheduler(config)
        subject.attach_bank_state(ready, open_rows)
        oracle = FrFcfsScheduler(SchedulerConfig(
            write_queue_drain_threshold=drain_threshold))
        now = 0.0
        picks = 0
        for _ in range(steps):
            op = rng.integers(4)
            if op == 0:
                fields = _request(rng, n_banks, now)
                accepted = subject.enqueue(Request(**fields))
                assert oracle.enqueue(Request(**fields)) == accepted
            elif op == 1:
                # Perturb one bank the way the controller would, keeping
                # the kernel mirrors in sync with the BankState list.
                b = int(rng.integers(n_banks))
                banks[b].ready_ns = now + float(rng.uniform(0.0, 30.0))
                banks[b].open_row = (
                    None if rng.integers(3) == 0 else int(rng.integers(8))
                )
                ready[b] = banks[b].ready_ns
                row = banks[b].open_row
                open_rows[b] = -1 if row is None else row
            elif op == 2:
                now += float(rng.uniform(0.0, 40.0))
                got = subject.next_request(banks, now)
                assert _fields(got) == _fields(oracle.next_request(banks, now))
                picks += got is not None
            else:
                floor = now + float(rng.uniform(0.0, 10.0))
                assert (subject.earliest_issue_ns(banks, floor)
                        == oracle.earliest_issue_ns(banks, floor))
        # Drain both to the bottom: equivalence must hold through the
        # write-drain hysteresis and the final test-traffic picks.
        while subject.pending or oracle.pending:
            now += 25.0
            got = subject.next_request(banks, now)
            assert _fields(got) == _fields(oracle.next_request(banks, now))
            if got is None:
                for b in range(n_banks):
                    banks[b].ready_ns = 0.0
                    ready[b] = 0.0
        assert subject.pending == oracle.pending == 0
        return picks
    finally:
        kernels.set_backend(None)


@pytest.mark.parametrize("backend", ENGAGED_BACKENDS)
class TestPickEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_banks=st.integers(1, 8),
        drain_threshold=st.sampled_from([2, 4, 16]),
    )
    def test_random_scripts(self, backend, seed, n_banks, drain_threshold):
        _run_script(seed, n_banks, steps=120,
                    drain_threshold=drain_threshold, backend=backend)

    def test_long_script_exercises_ring_compaction(self, backend):
        # Enough churn to force KindRing tombstone compaction and growth.
        picks = _run_script(seed=7, n_banks=4, steps=3000,
                            drain_threshold=4, backend=backend)
        assert picks > 200

    def test_row_hit_preferred_over_older_miss(self, backend):
        kernels.set_backend(backend)
        try:
            banks = [BankState(), BankState()]
            banks[1].open_row = 5
            ready = np.zeros(2, dtype=np.float64)
            open_rows = np.array([-1, 5], dtype=np.int64)
            scheduler = FrFcfsScheduler()
            scheduler.attach_bank_state(ready, open_rows)
            scheduler.enqueue(Request(RequestKind.READ, 0, 0, 3, 0.0))
            scheduler.enqueue(Request(RequestKind.READ, 0, 1, 5, 0.0))
            picked = scheduler.next_request(banks, 1.0)
            assert (picked.bank, picked.row) == (1, 5)  # the hit wins
            picked = scheduler.next_request(banks, 1.0)
            assert (picked.bank, picked.row) == (0, 3)
        finally:
            kernels.set_backend(None)

    def test_attach_requires_empty_queues(self, backend):
        kernels.set_backend(backend)
        try:
            scheduler = FrFcfsScheduler()
            scheduler.enqueue(Request(RequestKind.READ, 0, 0, 1, 0.0))
            with pytest.raises(ValueError, match="empty"):
                scheduler.attach_bank_state(
                    np.zeros(1), np.full(1, -1, dtype=np.int64)
                )
        finally:
            kernels.set_backend(None)
