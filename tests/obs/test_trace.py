"""JSONL event-trace schema: emission, sinks, validation, round-trip."""

import io
import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    JsonlTraceSink,
    ListTraceSink,
    TraceSchemaError,
    emit,
    read_trace,
    set_sink,
    trace_active,
    validate_record,
)


@pytest.fixture
def list_sink():
    sink = ListTraceSink()
    previous = set_sink(sink)
    try:
        yield sink
    finally:
        set_sink(previous)


class TestEmit:
    def test_emit_without_sink_is_noop(self):
        previous = set_sink(None)
        try:
            assert not trace_active()
            emit("test_started", t_ms=0.0, page=1)  # must not raise
        finally:
            set_sink(previous)

    def test_emit_adds_envelope(self, list_sink):
        emit("test_started", t_ms=5.0, page=3)
        (record,) = list_sink.records
        assert record == {
            "v": SCHEMA_VERSION, "kind": "test_started", "t_ms": 5.0, "page": 3,
        }

    def test_kinds_histogram(self, list_sink):
        emit("test_started", t_ms=0.0, page=1)
        emit("test_started", t_ms=1.0, page=2)
        emit("test_passed", t_ms=2.0, page=1)
        assert list_sink.kinds() == {"test_started": 2, "test_passed": 1}


class TestValidation:
    def test_every_kind_round_trips(self):
        # A minimal record of each declared kind must validate.
        for kind, fields in EVENT_KINDS.items():
            record = {"v": SCHEMA_VERSION, "kind": kind}
            record.update({name: 0 for name in fields})
            validate_record(record)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_record({"v": SCHEMA_VERSION, "kind": "nope"})

    def test_missing_field_rejected(self):
        with pytest.raises(TraceSchemaError) as err:
            validate_record({"v": SCHEMA_VERSION, "kind": "test_started"})
        assert "missing" in str(err.value)

    def test_wrong_version_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_record({"v": 999, "kind": "test_started",
                             "t_ms": 0.0, "page": 0})

    def test_extra_fields_allowed(self):
        validate_record({
            "v": SCHEMA_VERSION, "kind": "test_started",
            "t_ms": 0.0, "page": 0, "workload": "Netflix",
        })


class TestJsonlRoundTrip:
    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceSink(path) as sink:
            previous = set_sink(sink)
            try:
                emit("test_started", t_ms=0.0, page=1)
                emit("test_passed", t_ms=64.0, page=1)
                emit("pril_quantum", quantum=1, predicted=3, buffer=2)
            finally:
                set_sink(previous)
            assert sink.records_emitted == 3
        records = list(read_trace(path))
        assert [r["kind"] for r in records] == [
            "test_started", "test_passed", "pril_quantum",
        ]
        # One compact JSON object per line.
        lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["v"] == SCHEMA_VERSION for line in lines)

    def test_stream_sink_does_not_close_stream(self):
        stream = io.StringIO()
        sink = JsonlTraceSink(stream)
        sink.emit({"v": SCHEMA_VERSION, "kind": "run_finished", "wall_s": 1.0})
        sink.close()
        assert not stream.closed
        assert json.loads(stream.getvalue())["kind"] == "run_finished"

    def test_read_trace_rejects_bad_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "kind": "bogus_kind"}\n')
        with pytest.raises(TraceSchemaError):
            list(read_trace(str(path)))

    def test_read_trace_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceSchemaError):
            list(read_trace(str(path)))

    def test_read_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"v": 1, "kind": "run_started", "experiments": []}\n\n'
        )
        assert len(list(read_trace(str(path)))) == 1

    def test_no_validate_passes_unknown_kinds(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"v": 1, "kind": "future_kind"}\n')
        assert list(read_trace(str(path), validate=False)) == [
            {"v": 1, "kind": "future_kind"}
        ]


class TestNumericFieldValidation:
    @pytest.mark.parametrize("field,kind,base", [
        ("t_ms", "test_started", {"page": 0}),
        ("t_ns", "mc_refresh", {"channel": 0}),
        ("latency_ns", "mc_request",
         {"t_ns": 0.0, "kind_served": "read", "bank": 0}),
        ("wall_s", "run_finished", {}),
    ])
    def test_non_numeric_value_rejected(self, field, kind, base):
        record = {"v": SCHEMA_VERSION, "kind": kind, field: "12.5"}
        record.update(base)
        with pytest.raises(TraceSchemaError) as err:
            validate_record(record)
        assert "must be numeric" in str(err.value)

    def test_bool_is_not_numeric(self):
        with pytest.raises(TraceSchemaError):
            validate_record({"v": SCHEMA_VERSION, "kind": "test_started",
                             "t_ms": True, "page": 0})

    def test_int_and_float_accepted(self):
        validate_record({"v": SCHEMA_VERSION, "kind": "test_started",
                         "t_ms": 5, "page": 0})
        validate_record({"v": SCHEMA_VERSION, "kind": "test_started",
                         "t_ms": 5.0, "page": 0})


class TestCrashSafety:
    def test_default_flush_cadence(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        assert sink.flush_every == 1000
        sink.close()

    def test_negative_flush_every_rejected(self):
        with pytest.raises(ValueError):
            JsonlTraceSink(io.StringIO(), flush_every=-1)

    def test_flushes_every_n_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(str(path), flush_every=10)
        record = {"v": SCHEMA_VERSION, "kind": "test_started",
                  "t_ms": 0.0, "page": 1}
        for _ in range(25):
            sink.emit(record)
        # Without closing, everything up to the last flush boundary must
        # already be on disk (the crash-safety guarantee).
        on_disk = path.read_text().count("\n")
        assert on_disk >= 20
        sink.close()
        assert path.read_text().count("\n") == 25

    def test_flush_zero_disables_periodic_flush(self):
        flushes = []

        class CountingStream(io.StringIO):
            def flush(self):
                flushes.append(True)
                return super().flush()

        sink = JsonlTraceSink(CountingStream(), flush_every=0)
        record = {"v": SCHEMA_VERSION, "kind": "test_started",
                  "t_ms": 0.0, "page": 1}
        for _ in range(5000):
            sink.emit(record)
        assert not flushes

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "killed.jsonl"
        path.write_text(
            '{"v": 1, "kind": "test_started", "t_ms": 0.0, "page": 1}\n'
            '{"v": 1, "kind": "test_pas'  # the kill signature
        )
        with pytest.raises(TraceSchemaError):
            list(read_trace(str(path)))
        records = list(read_trace(str(path), tolerate_truncation=True))
        assert [r["kind"] for r in records] == ["test_started"]

    def test_corruption_mid_file_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            '{"v": 1, "kind": "test_started", "t_ms": 0.0, "page": 1}\n'
            '{"v": 1, "kind": "test_pas\n'
            '{"v": 1, "kind": "test_passed", "t_ms": 64.0, "page": 1}\n'
        )
        with pytest.raises(TraceSchemaError):
            list(read_trace(str(path), tolerate_truncation=True))

    def test_truncated_line_followed_by_blanks_tolerated(self, tmp_path):
        path = tmp_path / "killed.jsonl"
        path.write_text(
            '{"v": 1, "kind": "run_started", "experiments": []}\n'
            '{"v": 1, "kin\n'
            '\n'
        )
        records = list(read_trace(str(path), tolerate_truncation=True))
        assert len(records) == 1


class TestListSinkKinds:
    def test_record_without_kind_raises_schema_error(self):
        sink = ListTraceSink()
        sink.emit({"v": SCHEMA_VERSION, "kind": "run_finished", "wall_s": 1.0})
        sink.emit({"v": SCHEMA_VERSION, "page": 3})
        with pytest.raises(TraceSchemaError) as err:
            sink.kinds()
        assert "record 1" in str(err.value)


class TestSinkLifecycle:
    def _record(self):
        return {"v": SCHEMA_VERSION, "kind": "run_finished", "wall_s": 0.0}

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        sink.emit(self._record())
        sink.close()
        sink.close()  # must not raise
        assert sink.closed

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit(self._record())

    def test_atexit_close_registers_and_unregisters(self, tmp_path):
        import atexit

        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"), atexit_close=True)
        assert sink._atexit_registered
        sink.close()
        assert not sink._atexit_registered
        # An interpreter-exit flush after a manual close stays a no-op.
        atexit.unregister(sink.close)  # belt and braces for the test env
        sink.close()

    def test_parent_directories_created_for_path_targets(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlTraceSink(str(path)) as sink:
            sink.emit(self._record())
        assert [r["kind"] for r in read_trace(str(path))] == ["run_finished"]

    def test_unflushed_tail_written_on_close(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlTraceSink(path, flush_every=0)
        sink.emit(self._record())
        sink.close()
        assert len(list(read_trace(path))) == 1


class TestMergeResilience:
    """k-way merge over damaged / mixed-version shard sets."""

    def _shard(self, tmp_path, name, records, tail=""):
        path = tmp_path / name
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
            handle.write(tail)
        return str(path)

    def _rec(self, t_ms, page, version=SCHEMA_VERSION):
        return {"v": version, "kind": "test_started",
                "t_ms": t_ms, "page": page}

    def test_middle_shard_truncated_tail(self, tmp_path):
        # The middle shard ends in a partial line (killed worker); the
        # merge must drop only that line and stay time-sorted across
        # every surviving record.
        a = self._shard(tmp_path, "a.jsonl",
                        [self._rec(0.0, 1), self._rec(6.0, 2)])
        b = self._shard(tmp_path, "b.jsonl",
                        [self._rec(2.0, 3), self._rec(4.0, 4)],
                        tail='{"v": 1, "kind": "test_sta')
        c = self._shard(tmp_path, "c.jsonl", [self._rec(5.0, 5)])
        merged = list(read_trace(merge=[a, b, c]))
        assert [r["page"] for r in merged] == [1, 3, 4, 5, 2]
        times = [r["t_ms"] for r in merged]
        assert times == sorted(times)

    def test_truncated_tail_is_not_tolerated_mid_shard(self, tmp_path):
        # Garbage with valid lines after it is corruption, not a killed
        # writer; the merge must refuse rather than silently skip.
        path = tmp_path / "bad.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(self._rec(0.0, 1)) + "\n")
            handle.write('{"v": 1, "kind": "test_sta\n')
            handle.write(json.dumps(self._rec(2.0, 2)) + "\n")
        good = self._shard(tmp_path, "good.jsonl", [self._rec(1.0, 9)])
        with pytest.raises(TraceSchemaError):
            list(read_trace(merge=[str(path), good]))

    def test_mixed_schema_versions_merge_unvalidated(self, tmp_path):
        # A shard from an older writer (different envelope version)
        # still merges in time order when validation is off...
        old = self._shard(tmp_path, "old.jsonl",
                          [self._rec(1.0, 1, version=SCHEMA_VERSION + 1)])
        new = self._shard(tmp_path, "new.jsonl",
                          [self._rec(0.0, 2), self._rec(2.0, 3)])
        merged = list(read_trace(merge=[old, new], validate=False))
        assert [r["page"] for r in merged] == [2, 1, 3]

    def test_mixed_schema_versions_fail_validated(self, tmp_path):
        # ...and raises loudly when validation is on.
        old = self._shard(tmp_path, "old.jsonl",
                          [self._rec(1.0, 1, version=SCHEMA_VERSION + 1)])
        new = self._shard(tmp_path, "new.jsonl", [self._rec(0.0, 2)])
        with pytest.raises(TraceSchemaError, match="schema"):
            list(read_trace(merge=[old, new]))
