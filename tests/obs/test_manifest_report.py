"""Run manifests and the `python -m repro.obs.report` renderer."""

import json

import pytest

from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    git_revision,
    load_manifest,
)
from repro.obs.report import main as report_main


class TestRunManifest:
    def test_start_prefills_environment(self):
        manifest = RunManifest.start(["fig06"], seed=3, quick=True)
        assert manifest.experiments == ["fig06"]
        assert manifest.seed == 3
        assert manifest.python.count(".") >= 1
        assert manifest.platform_tag

    def test_write_and_load_round_trip(self, tmp_path):
        manifest = RunManifest.start(["fig06", "fig14"], seed=1, quick=False,
                                     config={"out": "r.md"})
        manifest.add_timing("fig06", 0.5)
        manifest.add_timing("fig14", 1.5, workloads=12)
        manifest.wall_s = 2.0
        manifest.metrics = {"counters": {"memcon.tests_started": 7}}
        path = str(tmp_path / "run.manifest.json")
        manifest.write(path)
        loaded = load_manifest(path)
        assert loaded["schema"] == MANIFEST_SCHEMA_VERSION
        assert loaded["experiments"] == ["fig06", "fig14"]
        assert loaded["quick"] is False
        assert loaded["config"] == {"out": "r.md"}
        assert loaded["timings"][1] == {
            "name": "fig14", "wall_s": 1.5, "workloads": 12,
        }
        assert loaded["metrics"]["counters"]["memcon.tests_started"] == 7

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError):
            load_manifest(str(path))

    def test_git_revision_in_repo(self):
        # The test suite runs from the repository, so this must resolve.
        rev = git_revision()
        assert rev is None or (len(rev) == 40 and set(rev) <= set("0123456789abcdef"))

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) is None


class TestReportCli:
    def _write_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [
            {"v": 1, "kind": "test_started", "t_ms": 0.0, "page": 1},
            {"v": 1, "kind": "test_started", "t_ms": 0.0, "page": 2},
            {"v": 1, "kind": "test_passed", "t_ms": 64.0, "page": 1},
            {"v": 1, "kind": "test_failed", "t_ms": 64.0, "page": 2},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return str(path)

    def test_trace_summary(self, tmp_path, capsys):
        assert report_main([self._write_trace(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "4 events" in out
        assert "test_started" in out
        # started (2) reconciles with aborted+passed+failed (0+1+1).
        assert "2 started = 0 aborted + 1 passed + 1 failed" in out
        assert "OK" in out
        assert "MISMATCH" not in out

    def test_trace_lifecycle_mismatch_verdict(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"v": 1, "kind": "test_started", "t_ms": 0.0, "page": 1}\n'
        )
        report_main([str(path)])
        out = capsys.readouterr().out
        assert "MISMATCH" in out

    def test_manifest_summary(self, tmp_path, capsys):
        manifest = RunManifest.start(["fig06"], seed=1, quick=True)
        manifest.add_timing("fig06", 0.123)
        manifest.spans = {
            "name": "run", "elapsed_s": 0.2, "count": 1,
            "children": [
                {"name": "fig06", "elapsed_s": 0.1, "count": 1, "children": []},
            ],
        }
        manifest.metrics = {"counters": {"memcon.tests_started": 3}}
        path = str(tmp_path / "m.json")
        manifest.write(path)
        assert report_main(["--manifest", path]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "memcon.tests_started" in out
        assert "0.123s" in out

    def test_requires_an_input(self, capsys):
        with pytest.raises(SystemExit):
            report_main([])

    def test_invalid_trace_fails_loudly(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "kind": "bogus"}\n')
        from repro.obs import TraceSchemaError

        with pytest.raises(TraceSchemaError):
            report_main([str(path)])


class TestProfileWorkersRoundTrip:
    """New manifest fields: "profile" and bus telemetry under "workers"."""

    def _manifest(self):
        manifest = RunManifest.start(["fig15"], seed=7, quick=True)
        manifest.profile = {
            "interval_s": 0.005, "wall_s": 3.0, "sample_count": 600,
            "attributed_fraction": 0.95, "rss_peak_bytes": 96 << 20,
            "stacks": {"run;fig15;sim.run": 570, "run": 30},
        }
        manifest.workers = {
            "jobs": 2, "start_method": "fork",
            "stats": {"executed": 8, "retried": 0, "workers_lost": 0},
            "telemetry": {
                "stall_after_s": 10.0, "messages": 16, "drained": 16,
                "events": [],
                "workers": [{
                    "label": "worker-g1-1", "pid": 11, "state": "idle",
                    "experiment": "fig15", "unit": "u3", "units_done": 4,
                    "heartbeats": 8, "stalls": 1, "recoveries": 1,
                    "rss_peak_bytes": 80 << 20, "first_t": 1.0,
                    "last_t": 9.0, "timeline": [], "counters": {},
                }],
            },
        }
        return manifest

    def test_to_dict_from_dict_round_trip(self):
        manifest = self._manifest()
        rebuilt = RunManifest.from_dict(manifest.to_dict())
        assert rebuilt.profile == manifest.profile
        assert rebuilt.workers == manifest.workers
        assert rebuilt.to_dict() == manifest.to_dict()

    def test_from_dict_tolerates_pre_profile_manifests(self):
        data = self._manifest().to_dict()
        del data["profile"]
        del data["workers"]
        rebuilt = RunManifest.from_dict(data)
        assert rebuilt.profile is None
        assert rebuilt.workers is None

    def test_from_dict_rejects_wrong_schema(self):
        data = self._manifest().to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError):
            RunManifest.from_dict(data)

    def test_file_round_trip(self, tmp_path):
        manifest = self._manifest()
        path = str(tmp_path / "m.json")
        manifest.write(path)
        loaded = load_manifest(path)
        assert loaded["profile"]["sample_count"] == 600
        assert loaded["workers"]["telemetry"]["workers"][0]["stalls"] == 1

    def test_report_renders_profile_and_workers(self, tmp_path, capsys):
        path = str(tmp_path / "m.json")
        self._manifest().write(path)
        assert report_main(["--manifest", path]) == 0
        out = capsys.readouterr().out
        assert "600 samples" in out
        assert "95.0% attributed" in out
        assert "run;fig15;sim.run" in out
        assert "workers: jobs 2 (fork)" in out
        assert "worker-g1-1" in out
        assert "workers_lost 0" in out


class TestForensicsRoundTrip:
    """The manifest's "forensics" census field and its report block."""

    def _manifest(self):
        manifest = RunManifest.start(["hammer01"], seed=3, quick=True)
        manifest.forensics = {
            "records": 42, "rows": 7,
            "kinds": {"forensic_row": 5, "pril_grant": 30,
                      "test_started": 7},
            "verdicts": {"composed": 3, "memcon-miss": 2},
            "ledger_path": "run.forensics.jsonl",
        }
        return manifest

    def test_to_dict_from_dict_round_trip(self):
        manifest = self._manifest()
        rebuilt = RunManifest.from_dict(manifest.to_dict())
        assert rebuilt.forensics == manifest.forensics
        assert rebuilt.to_dict() == manifest.to_dict()

    def test_from_dict_tolerates_pre_forensics_manifests(self):
        data = self._manifest().to_dict()
        del data["forensics"]
        assert RunManifest.from_dict(data).forensics is None

    def test_report_renders_census(self, tmp_path, capsys):
        path = str(tmp_path / "m.json")
        self._manifest().write(path)
        assert report_main(["--manifest", path]) == 0
        out = capsys.readouterr().out
        assert "forensics: 42 ledger records across 7 rows" in out
        assert "run.forensics.jsonl" in out
        assert "composed" in out and "memcon-miss" in out

    def test_report_silent_without_census(self, tmp_path, capsys):
        manifest = RunManifest.start(["hammer01"], seed=3, quick=True)
        path = str(tmp_path / "m.json")
        manifest.write(path)
        assert report_main(["--manifest", path]) == 0
        assert "forensics" not in capsys.readouterr().out
