"""Run manifests and the `python -m repro.obs.report` renderer."""

import json

import pytest

from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    git_revision,
    load_manifest,
)
from repro.obs.report import main as report_main


class TestRunManifest:
    def test_start_prefills_environment(self):
        manifest = RunManifest.start(["fig06"], seed=3, quick=True)
        assert manifest.experiments == ["fig06"]
        assert manifest.seed == 3
        assert manifest.python.count(".") >= 1
        assert manifest.platform_tag

    def test_write_and_load_round_trip(self, tmp_path):
        manifest = RunManifest.start(["fig06", "fig14"], seed=1, quick=False,
                                     config={"out": "r.md"})
        manifest.add_timing("fig06", 0.5)
        manifest.add_timing("fig14", 1.5, workloads=12)
        manifest.wall_s = 2.0
        manifest.metrics = {"counters": {"memcon.tests_started": 7}}
        path = str(tmp_path / "run.manifest.json")
        manifest.write(path)
        loaded = load_manifest(path)
        assert loaded["schema"] == MANIFEST_SCHEMA_VERSION
        assert loaded["experiments"] == ["fig06", "fig14"]
        assert loaded["quick"] is False
        assert loaded["config"] == {"out": "r.md"}
        assert loaded["timings"][1] == {
            "name": "fig14", "wall_s": 1.5, "workloads": 12,
        }
        assert loaded["metrics"]["counters"]["memcon.tests_started"] == 7

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError):
            load_manifest(str(path))

    def test_git_revision_in_repo(self):
        # The test suite runs from the repository, so this must resolve.
        rev = git_revision()
        assert rev is None or (len(rev) == 40 and set(rev) <= set("0123456789abcdef"))

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) is None


class TestReportCli:
    def _write_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [
            {"v": 1, "kind": "test_started", "t_ms": 0.0, "page": 1},
            {"v": 1, "kind": "test_started", "t_ms": 0.0, "page": 2},
            {"v": 1, "kind": "test_passed", "t_ms": 64.0, "page": 1},
            {"v": 1, "kind": "test_failed", "t_ms": 64.0, "page": 2},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return str(path)

    def test_trace_summary(self, tmp_path, capsys):
        assert report_main([self._write_trace(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "4 events" in out
        assert "test_started" in out
        # started (2) reconciles with aborted+passed+failed (0+1+1).
        assert "2 started = 0 aborted + 1 passed + 1 failed" in out
        assert "OK" in out
        assert "MISMATCH" not in out

    def test_trace_lifecycle_mismatch_verdict(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"v": 1, "kind": "test_started", "t_ms": 0.0, "page": 1}\n'
        )
        report_main([str(path)])
        out = capsys.readouterr().out
        assert "MISMATCH" in out

    def test_manifest_summary(self, tmp_path, capsys):
        manifest = RunManifest.start(["fig06"], seed=1, quick=True)
        manifest.add_timing("fig06", 0.123)
        manifest.spans = {
            "name": "run", "elapsed_s": 0.2, "count": 1,
            "children": [
                {"name": "fig06", "elapsed_s": 0.1, "count": 1, "children": []},
            ],
        }
        manifest.metrics = {"counters": {"memcon.tests_started": 3}}
        path = str(tmp_path / "m.json")
        manifest.write(path)
        assert report_main(["--manifest", path]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "memcon.tests_started" in out
        assert "0.123s" in out

    def test_requires_an_input(self, capsys):
        with pytest.raises(SystemExit):
            report_main([])

    def test_invalid_trace_fails_loudly(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "kind": "bogus"}\n')
        from repro.obs import TraceSchemaError

        with pytest.raises(TraceSchemaError):
            report_main([str(path)])
