"""Sampled profiler: span-stack attribution, collapsed output, mem mode."""

import tracemalloc

import pytest

from repro import obs
from repro.obs.profile import SampledProfiler


class TestSampleOnce:
    __test__ = True

    def test_attributes_to_named_span_stack(self):
        prof = SampledProfiler()
        with obs.collect_spans("run"):
            with obs.span("fig15"):
                with obs.span("sim.run"):
                    stack = prof.sample_once()
        assert stack == "run;fig15;sim.run"
        assert prof.stacks == {"run;fig15;sim.run": 1}
        assert prof.sample_count == 1
        assert prof.attributed == 1
        assert prof.attributed_fraction == 1.0

    def test_root_only_sample_is_unattributed(self):
        prof = SampledProfiler()
        with obs.collect_spans("run"):
            prof.sample_once()
        assert prof.stacks == {"run": 1}
        assert prof.attributed == 0
        assert prof.attributed_fraction == 0.0

    def test_no_collector_bucket(self):
        prof = SampledProfiler()
        assert prof.sample_once() == "(no-collector)"
        assert prof.attributed_fraction == 0.0

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SampledProfiler(interval_s=0.0)


class TestLifecycle:
    __test__ = True

    def test_thread_samples_while_running(self):
        prof = SampledProfiler(interval_s=0.001)
        with obs.collect_spans("run"):
            with obs.span("busy"):
                with prof:
                    deadline = 500
                    while prof.sample_count < 3 and deadline:
                        prof._stop.wait(0.002)
                        deadline -= 1
        assert prof.sample_count >= 3
        assert prof.wall_s > 0.0
        assert any(s.startswith("run;busy") for s in prof.stacks)

    def test_double_start_raises(self):
        prof = SampledProfiler(interval_s=0.05)
        prof.start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()

    def test_stop_without_start_is_noop(self):
        SampledProfiler().stop()


class TestOutput:
    __test__ = True

    def _sampled(self):
        prof = SampledProfiler(interval_s=0.5)
        with obs.collect_spans("run"):
            with obs.span("fill"):
                prof.sample_once()
                prof.sample_once()
            prof.sample_once()
        return prof

    def test_to_dict_shape_and_ordering(self):
        prof = self._sampled()
        data = prof.to_dict()
        assert data["sample_count"] == 3
        assert data["attributed_fraction"] == round(2 / 3, 4)
        assert list(data["stacks"]) == ["run;fill", "run"]
        assert data["stacks"]["run;fill"] == 2
        assert "mem" not in data

    def test_write_collapsed(self, tmp_path):
        prof = self._sampled()
        out = tmp_path / "deep" / "stacks.txt"
        prof.write_collapsed(str(out))
        lines = out.read_text().splitlines()
        assert lines == ["run 1", "run;fill 2"]

    def test_manifest_roundtrip(self, tmp_path):
        """The profile payload survives write -> load intact."""
        manifest = obs.RunManifest(experiments=["fig15"], seed=7, quick=True)
        manifest.profile = self._sampled().to_dict()
        path = tmp_path / "m.json"
        manifest.write(str(path))
        loaded = obs.load_manifest(str(path))
        assert loaded["profile"] == manifest.profile


class TestMemMode:
    __test__ = True

    def test_mem_sampling_records_heap_peaks(self):
        prof = SampledProfiler(mem=True)
        was_tracing = tracemalloc.is_tracing()
        prof_started = False
        try:
            prof.start()
            prof_started = True
            assert tracemalloc.is_tracing()
            with obs.collect_spans("run"):
                with obs.span("alloc"):
                    blob = bytearray(2 << 20)
                    prof.sample_once()
                    del blob
        finally:
            if prof_started:
                prof.stop()
        if not was_tracing:
            assert not tracemalloc.is_tracing()
        data = prof.to_dict()
        assert data["mem"]["tracemalloc_peak_bytes"] >= 2 << 20
        assert data["mem"]["stack_peaks"].get("run;alloc", 0) >= 2 << 20
