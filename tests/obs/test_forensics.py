"""Forensic ledger: gate semantics, verdict mapping, extraction census."""

import json

import pytest

from repro import obs
from repro.obs import EVENT_KINDS, SCHEMA_VERSION, validate_record
from repro.obs.forensics import (
    FORENSIC_KINDS,
    LEDGER_KINDS,
    VERDICTS,
    classify_verdict,
    extract_ledger,
    forensics_active,
    iter_ledger,
    ledger_census,
    record_row,
    set_forensics,
)


@pytest.fixture
def forensics_on():
    previous = set_forensics(True)
    try:
        yield
    finally:
        set_forensics(previous)


class TestGate:
    def test_off_by_default(self):
        assert forensics_active() is False

    def test_set_returns_previous(self):
        assert set_forensics(True) is False
        try:
            assert forensics_active() is True
            assert set_forensics(False) is True
        finally:
            set_forensics(False)

    def test_obs_reexports(self):
        assert obs.forensics_active is forensics_active
        assert obs.set_forensics is set_forensics
        assert obs.classify_verdict is classify_verdict


class TestKinds:
    def test_forensic_kinds_registered(self):
        # Every forensic kind must be a declared trace kind, so the
        # ledger validates as an ordinary trace.
        assert FORENSIC_KINDS <= set(EVENT_KINDS)

    def test_ledger_kinds_superset(self):
        assert FORENSIC_KINDS < LEDGER_KINDS
        assert "test_started" in LEDGER_KINDS
        assert "ref_transition" in LEDGER_KINDS

    def test_minimal_records_validate(self):
        for kind in FORENSIC_KINDS:
            record = {"v": SCHEMA_VERSION, "kind": kind}
            record.update({name: 0 for name in EVENT_KINDS[kind]})
            validate_record(record)

    def test_record_row_emits(self, obs_env, forensics_on):
        _registry, sink = obs_env
        record_row(7, "composed", t_ms=1.0, benchmark="mcf")
        (record,) = sink.records
        assert record["kind"] == "forensic_row"
        assert record["row"] == 7
        assert record["verdict"] == "composed"

    def test_record_row_rejects_unknown_verdict(self, obs_env, forensics_on):
        with pytest.raises(ValueError):
            record_row(7, "gremlins")


class TestClassifyVerdict:
    def test_truth_table(self):
        # (factual, no_disturb, alt_content, flipped) -> verdict
        table = [
            ((True, True, True, False), "content-dependent"),
            ((False, True, False, False), "content-dependent"),
            ((True, False, True, False), "disturb-driven"),
            ((True, False, False, False), "composed"),
            ((True, False, False, True), "composed"),
            ((False, False, False, True), "memcon-miss"),
            ((False, False, True, True), "memcon-miss"),
            ((False, False, False, False), "safe"),
            ((False, False, True, False), "safe"),
        ]
        for args, expected in table:
            assert classify_verdict(*args) == expected, args

    def test_closed_vocabulary(self):
        from itertools import product

        for args in product((False, True), repeat=4):
            assert classify_verdict(*args) in VERDICTS


def _ledger_stream():
    return [
        {"v": SCHEMA_VERSION, "kind": "run_started"},
        {"v": SCHEMA_VERSION, "kind": "pril_grant", "page": 3, "quantum": 1},
        {"v": SCHEMA_VERSION, "kind": "test_started", "t_ms": 1.0, "page": 3},
        {"v": SCHEMA_VERSION, "kind": "mc_request", "t_ns": 5.0},
        {"v": SCHEMA_VERSION, "kind": "forensic_row", "row": 9,
         "verdict": "composed"},
        {"v": SCHEMA_VERSION, "kind": "forensic_row", "row": 9,
         "verdict": "memcon-miss"},
    ]


class TestLedgerExtraction:
    def test_iter_ledger_filters_non_causal_kinds(self):
        kinds = [r["kind"] for r in iter_ledger(_ledger_stream())]
        assert kinds == [
            "pril_grant", "test_started", "forensic_row", "forensic_row",
        ]

    def test_census(self):
        census = ledger_census(iter_ledger(_ledger_stream()))
        assert census["records"] == 4
        assert census["kinds"] == {
            "forensic_row": 2, "pril_grant": 1, "test_started": 1,
        }
        assert census["verdicts"] == {"composed": 1, "memcon-miss": 1}
        # pages and rows count into one distinct-subject pool
        assert census["rows"] == 2

    def test_extract_from_file(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with open(trace, "w") as handle:
            for record in _ledger_stream():
                handle.write(json.dumps(record) + "\n")
        ledger = tmp_path / "t.forensics.jsonl"
        census = extract_ledger(str(trace), str(ledger))
        assert census["records"] == 4
        assert census["ledger_path"] == str(ledger)
        written = [json.loads(line) for line in open(ledger)]
        assert [r["kind"] for r in written] == [
            "pril_grant", "test_started", "forensic_row", "forensic_row",
        ]
        # The ledger is itself a readable trace.
        assert len(list(obs.read_trace(str(ledger)))) == 4

    def test_extract_from_records(self):
        census = extract_ledger(records=_ledger_stream())
        assert census["records"] == 4
        assert "ledger_path" not in census

    def test_exactly_one_source(self, tmp_path):
        with pytest.raises(ValueError):
            extract_ledger()
        with pytest.raises(ValueError):
            extract_ledger("x.jsonl", records=[])

    def test_extract_tolerates_truncation(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with open(trace, "w") as handle:
            for record in _ledger_stream():
                handle.write(json.dumps(record) + "\n")
            handle.write('{"v": 1, "kind": "forensic_r')  # killed mid-write
        census = extract_ledger(str(trace))
        assert census["records"] == 4


class TestGatedEmission:
    """Instrumented hot paths stay silent unless BOTH gates are open."""

    def test_predicate_eval_needs_both_gates(self, obs_env):
        import numpy as np

        from repro.dram.faults import FaultMap, FaultModelConfig

        _registry, sink = obs_env
        fault_map = FaultMap(
            16, 256, FaultModelConfig(vulnerable_cell_rate=5e-2), seed=3
        )
        rows = np.arange(16)
        bits = np.ones(256, dtype=np.uint8)
        fault_map.rows_fail(rows, bits, 328.0)
        assert sink.kinds().get("predicate_eval") is None

        previous = set_forensics(True)
        try:
            with_gate = fault_map.rows_fail(rows, bits, 328.0)
        finally:
            set_forensics(previous)
        assert sink.kinds()["predicate_eval"] == 1
        record = [r for r in sink.records if r["kind"] == "predicate_eval"][0]
        assert record["rows"] == 16
        assert record["failed"] == int(with_gate.sum())
        assert record["rows_failed_sample"] == [
            int(r) for r in rows[with_gate]
        ][:64]

    def test_forensics_alone_without_sink_is_silent(self):
        import numpy as np

        from repro.dram.faults import FaultMap, FaultModelConfig

        fault_map = FaultMap(
            8, 128, FaultModelConfig(vulnerable_cell_rate=5e-2), seed=3
        )
        previous = set_forensics(True)
        try:
            # No sink installed: must not raise, must not emit anywhere.
            fault_map.rows_fail(
                np.arange(8), np.ones(128, dtype=np.uint8), 328.0
            )
        finally:
            set_forensics(previous)
