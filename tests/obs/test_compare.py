"""Regression gate: metric extraction, verdicts, and the CLI contract."""

import json

import pytest

from repro.obs.compare import (
    DEFAULT_THRESHOLD,
    WALL_CLOCK_THRESHOLD,
    classify_direction,
    compare_files,
    compare_metrics,
    extract_metrics,
    main,
)
from repro.obs.manifest import RunManifest


def _manifest_dict(wall_s=2.0, sim_wall_s=1.5, counters=None):
    manifest = RunManifest.start(["fig06"], seed=0, quick=True)
    manifest.add_timing("sim.fig06", sim_wall_s)
    manifest.metrics = {"counters": dict(counters or {"sim.loops": 100}),
                        "gauges": {"memcon.lo_ref_rows": 40.0}}
    manifest.wall_s = wall_s
    return manifest.to_dict()


def _write(path, data):
    path.write_text(json.dumps(data), encoding="utf-8")
    return str(path)


class TestDirectionHeuristics:
    __test__ = True

    @pytest.mark.parametrize("name,expected", [
        ("fig15.weighted_speedup", "higher"),
        ("pril.hit_rate", "higher"),
        ("mean_ipc", "higher"),
        ("fig14.refresh_reduction", "higher"),
        ("obs_disabled_overhead.est_disabled_overhead_fraction", "lower"),
        ("mc.read_latency_ns", "lower"),
        ("timing.sim.fig06_s", "lower"),
        ("wall_s", "lower"),
        ("window_ms", "lower"),
        ("hammer02.cell_flips", "lower"),
        ("hammer01.rows_flipped", "lower"),
        ("hammer01.max_pressure", "lower"),
        ("counter.sim.loop_iterations", None),
        ("trace_events", None),
    ])
    def test_classification(self, name, expected):
        assert classify_direction(name) == expected

    def test_higher_tokens_win_over_lower_suffix(self):
        # "hit_rate_ns" is contrived, but ordering must be deterministic.
        assert classify_direction("coverage_ms") == "higher"


class TestExtractMetrics:
    __test__ = True

    def test_manifest_flattening(self):
        metrics = extract_metrics(_manifest_dict())
        assert metrics["wall_s"] == 2.0
        assert metrics["timing.sim.fig06_s"] == 1.5
        assert metrics["counter.sim.loops"] == 100.0
        assert metrics["gauge.memcon.lo_ref_rows"] == 40.0

    def test_bench_flattening_skips_metadata(self):
        bench = {
            "obs_disabled_overhead": {
                "disabled_run_s": 0.5,
                "obs_calls": 12000,
                "recorded_at": "2026-08-06T00:00:00",
                "history": [{"disabled_run_s": 0.6}],
                "note": "not a number",
                "flag": True,
            }
        }
        metrics = extract_metrics(bench)
        assert metrics == {
            "obs_disabled_overhead.disabled_run_s": 0.5,
            "obs_disabled_overhead.obs_calls": 12000.0,
        }


class TestVerdicts:
    __test__ = True

    def test_identical_maps_are_ok(self):
        metrics = {"a.latency_ns": 10.0, "b.speedup": 3.0, "c.count": 7.0}
        result = compare_metrics(metrics, dict(metrics))
        assert result.ok(strict=True)
        assert {d.verdict for d in result.deltas} == {"ok", "info"}

    def test_latency_increase_is_regression(self):
        result = compare_metrics({"mc.latency_ns": 100.0},
                                 {"mc.latency_ns": 120.0})
        (delta,) = result.deltas
        assert delta.verdict == "regression"
        assert delta.rel_change == pytest.approx(0.20)
        assert not result.ok()

    def test_speedup_drop_is_regression_and_gain_improvement(self):
        down = compare_metrics({"fig15.speedup": 4.0}, {"fig15.speedup": 3.0})
        assert down.deltas[0].verdict == "regression"
        up = compare_metrics({"fig15.speedup": 4.0}, {"fig15.speedup": 5.0})
        assert up.deltas[0].verdict == "improvement"
        assert up.ok()

    def test_within_threshold_is_ok(self):
        result = compare_metrics({"mc.latency_ns": 100.0},
                                 {"mc.latency_ns": 105.0})
        assert result.deltas[0].verdict == "ok"

    def test_directionless_metric_never_gates(self):
        result = compare_metrics({"trace_events": 100.0},
                                 {"trace_events": 900.0})
        assert result.deltas[0].verdict == "info"
        assert result.ok(strict=True)

    def test_missing_and_added(self):
        result = compare_metrics({"old.latency_ns": 5.0},
                                 {"new.latency_ns": 5.0})
        verdicts = {d.name: d.verdict for d in result.deltas}
        assert verdicts == {"old.latency_ns": "missing",
                           "new.latency_ns": "added"}
        assert result.ok()
        assert not result.ok(strict=True)

    def test_zero_baseline_yields_infinite_change(self):
        result = compare_metrics({"x.overhead": 0.0}, {"x.overhead": 1.0})
        delta = result.deltas[0]
        assert delta.rel_change == float("inf")
        assert delta.verdict == "regression"

    def test_wall_clock_noise_floor(self):
        # 20% slower wall clock is inside the 30% noise floor...
        result = compare_metrics({"timing.fig06_s": 1.0},
                                 {"timing.fig06_s": 1.2})
        assert result.deltas[0].threshold == WALL_CLOCK_THRESHOLD
        assert result.deltas[0].verdict == "ok"
        # ...but 40% is not.
        result = compare_metrics({"timing.fig06_s": 1.0},
                                 {"timing.fig06_s": 1.4})
        assert result.deltas[0].verdict == "regression"

    def test_explicit_override_beats_noise_floor(self):
        result = compare_metrics(
            {"timing.fig06_s": 1.0}, {"timing.fig06_s": 1.2},
            overrides={"timing.fig06_s": 0.05},
        )
        assert result.deltas[0].threshold == 0.05
        assert result.deltas[0].verdict == "regression"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_metrics({}, {}, threshold=-0.1)


class TestCompareFiles:
    __test__ = True

    def test_manifest_vs_manifest(self, tmp_path):
        old = _write(tmp_path / "old.json", _manifest_dict(sim_wall_s=1.0))
        new = _write(tmp_path / "new.json", _manifest_dict(sim_wall_s=2.0))
        result = compare_files(old, new)
        by_name = {d.name: d for d in result.deltas}
        assert by_name["timing.sim.fig06_s"].verdict == "regression"

    def test_bench_vs_bench(self, tmp_path):
        old = _write(tmp_path / "old.json",
                     {"bench": {"latency_ns": 100.0}})
        new = _write(tmp_path / "new.json",
                     {"bench": {"latency_ns": 95.0}})
        assert compare_files(old, new).ok()


class TestCli:
    __test__ = True

    def test_identical_manifests_exit_zero(self, tmp_path, capsys):
        data = _manifest_dict()
        old = _write(tmp_path / "old.json", data)
        new = _write(tmp_path / "new.json", data)
        assert main([old, new]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_regression_exits_one(self, tmp_path, capsys):
        old = _write(tmp_path / "old.json",
                     {"bench": {"run_latency_ns": 100.0}})
        new = _write(tmp_path / "new.json",
                     {"bench": {"run_latency_ns": 200.0}})
        assert main([old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_warn_only_suppresses_failure(self, tmp_path, capsys):
        old = _write(tmp_path / "old.json",
                     {"bench": {"run_latency_ns": 100.0}})
        new = _write(tmp_path / "new.json",
                     {"bench": {"run_latency_ns": 200.0}})
        assert main([old, new, "--warn-only"]) == 0
        assert "warn" in capsys.readouterr().err.lower()

    def test_strict_fails_on_missing_metric(self, tmp_path):
        old = _write(tmp_path / "old.json", {"bench": {"events": 5}})
        new = _write(tmp_path / "new.json", {"other": {"events": 5}})
        assert main([old, new]) == 0
        assert main([old, new, "--strict"]) == 1

    def test_metric_threshold_override(self, tmp_path):
        old = _write(tmp_path / "old.json", {"b": {"latency_ns": 100.0}})
        new = _write(tmp_path / "new.json", {"b": {"latency_ns": 115.0}})
        assert main([old, new]) == 1
        assert main([old, new,
                     "--metric-threshold", "b.latency_ns=0.20"]) == 0

    def test_bad_override_spec_rejected(self, tmp_path, capsys):
        old = _write(tmp_path / "old.json", {})
        with pytest.raises(SystemExit):
            main([old, old, "--metric-threshold", "nonsense"])

    def test_unreadable_input_exits_two(self, tmp_path, capsys):
        ok = _write(tmp_path / "ok.json", {})
        assert main([str(tmp_path / "absent.json"), ok]) == 2
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json", encoding="utf-8")
        assert main([str(garbled), ok]) == 2
        assert "error:" in capsys.readouterr().err

    def test_verbose_lists_quiet_metrics(self, tmp_path, capsys):
        data = {"bench": {"events": 5}}
        old = _write(tmp_path / "old.json", data)
        new = _write(tmp_path / "new.json", data)
        main([old, new])
        assert "bench.events" not in capsys.readouterr().out
        main([old, new, "--verbose"])
        assert "bench.events" in capsys.readouterr().out

    def test_default_threshold_is_ten_percent(self):
        assert DEFAULT_THRESHOLD == 0.10


class TestObservabilityMetrics:
    """PR 7 additions: RSS / profiler metrics in the gate."""

    @pytest.mark.parametrize("name,expected", [
        ("profile.rss_peak_bytes", "lower"),
        ("workers.rss_peak_bytes", "lower"),
        ("profile.attributed_fraction", "higher"),  # beats "fraction"
        ("profile.sample_count", None),  # informational only
        ("profile.wall_s", "lower"),
    ])
    def test_new_direction_tokens(self, name, expected):
        assert classify_direction(name) == expected

    def test_rss_gets_wall_clock_noise_floor(self):
        """RSS swings with allocator/page-cache behavior: a 20% bump
        must not gate under the default 10% threshold."""
        old = {"profile.rss_peak_bytes": 100e6}
        new = {"profile.rss_peak_bytes": 120e6}
        result = compare_metrics(old, new)
        (delta,) = result.deltas
        assert delta.threshold == WALL_CLOCK_THRESHOLD
        assert delta.verdict == "ok"
        worse = compare_metrics(old, {"profile.rss_peak_bytes": 140e6})
        assert worse.deltas[0].verdict == "regression"

    def test_profile_and_telemetry_extracted_from_manifest(self):
        data = _manifest_dict()
        data["profile"] = {
            "interval_s": 0.005, "wall_s": 2.0, "sample_count": 400,
            "attributed_fraction": 0.9, "rss_peak_bytes": 90e6,
            "stacks": {"run": 400},
        }
        data["workers"] = {
            "jobs": 2, "stats": {},
            "telemetry": {"workers": [
                {"label": "w0", "rss_peak_bytes": 70e6},
                {"label": "w1", "rss_peak_bytes": 85e6},
            ]},
        }
        metrics = extract_metrics(data)
        assert metrics["profile.sample_count"] == 400
        assert metrics["profile.attributed_fraction"] == 0.9
        assert metrics["profile.rss_peak_bytes"] == 90e6
        assert metrics["workers.rss_peak_bytes"] == 85e6  # max of fleet
        # The stacks dict itself must not leak in as metrics.
        assert not any(k.startswith("profile.stacks") for k in metrics)

    def test_attribution_drop_gates(self):
        old = {"profile.attributed_fraction": 0.95}
        new = {"profile.attributed_fraction": 0.60}
        result = compare_metrics(old, new)
        assert result.deltas[0].verdict == "regression"

    def test_sample_count_change_is_informational(self):
        result = compare_metrics({"profile.sample_count": 100.0},
                                 {"profile.sample_count": 900.0})
        assert result.deltas[0].verdict == "info"
        assert result.ok()


class TestMalformedSections:
    """A manifest missing or corrupting a whole section must degrade to
    warn-only no-data, never a crash — the other sections still gate."""

    def _extract(self, **overrides):
        data = _manifest_dict()
        data.update(overrides)
        warnings = []
        metrics = extract_metrics(data, warnings)
        return metrics, warnings

    def test_missing_sections_are_silent_no_data(self):
        data = _manifest_dict()
        for section in ("timeseries", "profile", "workers", "metrics",
                        "timings", "forensics"):
            data.pop(section, None)
        warnings = []
        metrics = extract_metrics(data, warnings)
        assert metrics == {"wall_s": 2.0}
        assert warnings == []

    def test_malformed_timeseries_warns(self):
        metrics, warnings = self._extract(timeseries=[1, 2, 3])
        assert "wall_s" in metrics
        assert any("timeseries" in w for w in warnings)

    def test_malformed_profile_warns(self):
        metrics, warnings = self._extract(profile=["not", "a", "mapping"])
        assert "wall_s" in metrics
        assert not any(name.startswith("profile.") for name in metrics)
        assert any("profile" in w for w in warnings)

    def test_malformed_workers_warns(self):
        metrics, warnings = self._extract(workers="broken")
        assert "wall_s" in metrics
        assert any("workers" in w for w in warnings)

    def test_malformed_telemetry_entries_warn(self):
        metrics, warnings = self._extract(workers={
            "jobs": 2,
            "telemetry": {"workers": ["junk", {"rss_peak_bytes": 5}]},
        })
        assert metrics["workers.rss_peak_bytes"] == 5.0
        assert any("workers" in w for w in warnings)

    def test_malformed_timings_warns(self):
        metrics, warnings = self._extract(timings="oops")
        assert "wall_s" in metrics
        assert not any(name.startswith("timing.") for name in metrics)
        assert any("timings" in w for w in warnings)

    def test_malformed_metrics_snapshot_warns(self):
        metrics, warnings = self._extract(metrics={"counters": 7})
        assert not any(name.startswith("counter.") for name in metrics)
        assert any("counters" in w for w in warnings)

    def test_timeseries_and_forensics_extracted(self):
        metrics, warnings = self._extract(
            timeseries={"events_total": 120, "windows": []},
            forensics={"records": 9, "rows": 4,
                       "verdicts": {"composed": 2}},
        )
        assert metrics["timeseries.events_total"] == 120.0
        assert metrics["forensics.records"] == 9.0
        assert metrics["forensics.rows"] == 4.0
        assert warnings == []

    def test_cli_survives_malformed_manifest(self, tmp_path, capsys):
        data = _manifest_dict()
        data["profile"] = [1]
        data["workers"] = "nope"
        old = _write(tmp_path / "old.json", data)
        new = _write(tmp_path / "new.json", data)
        assert main([old, new]) == 0
        err = capsys.readouterr().err
        assert "warning" in err and "profile" in err


def _fleet_section():
    return {
        "hosts": {"done": 8, "failed": 0},
        "tenants": {
            "web": {
                "hosts_done": 4, "hosts_failed": 0,
                "coverage": {"mean": 0.62, "min": 0.5, "max": 0.7,
                             "p50": 0.6, "p95": 0.7},
                "refresh_reduction_mean": 0.55,
                "tests": {"total": 40, "failed": 2, "correct": 36,
                          "mispredicted": 2, "aborted": 0},
                "pril_hit_rate": 0.9,
                "test_bandwidth_per_s": 5.0,
            },
        },
        "coverage": {"mean": 0.6, "bin_edges": [0.0, 0.5, 1.0],
                     "bin_counts": [3, 5]},
        "wall": {"hosts_timed": 8, "p50_s": 0.2, "p95_s": 0.5,
                 "p99_s": 0.6, "max_s": 0.7},
        "tests": {"total": 80, "bandwidth_per_s": 9.5},
        "pril_hit_rate": 0.88,
        "ingest": {"records": 1200, "backlog_peak": 3},
        "resident_rows": {"peak": 120, "evicted": 900.0},
        "trace_cache": {"hits": 5.0, "misses": 7.0},
    }


class TestFleetMetrics:
    """The fleet service's manifest section feeds the regression gate."""

    @pytest.mark.parametrize("name,expected", [
        ("fleet.hosts_done", "higher"),
        ("fleet.hosts_failed", "lower"),
        ("fleet.test_bandwidth_per_s", "higher"),
        ("fleet.ingest_backlog_peak", "lower"),
        ("fleet.resident_rows_peak", "lower"),
        ("fleet.tenant.web.coverage_mean", "higher"),
        ("fleet.ingest_records", None),
    ])
    def test_fleet_direction_tokens(self, name, expected):
        assert classify_direction(name) == expected

    def test_fleet_section_extracted(self):
        data = _manifest_dict()
        data["fleet"] = _fleet_section()
        warnings = []
        metrics = extract_metrics(data, warnings)
        assert metrics["fleet.hosts_done"] == 8.0
        assert metrics["fleet.hosts_failed"] == 0.0
        assert metrics["fleet.coverage_mean"] == 0.6
        assert metrics["fleet.pril_hit_rate"] == 0.88
        assert metrics["fleet.test_bandwidth_per_s"] == 9.5
        assert metrics["fleet.wall_p95_s"] == 0.5
        assert metrics["fleet.ingest_records"] == 1200.0
        assert metrics["fleet.ingest_backlog_peak"] == 3.0
        assert metrics["fleet.resident_rows_peak"] == 120.0
        assert metrics["fleet.tenant.web.coverage_mean"] == 0.62
        assert metrics["fleet.tenant.web.pril_hit_rate"] == 0.9
        assert warnings == []

    def test_old_manifest_without_fleet_is_silent(self):
        warnings = []
        metrics = extract_metrics(_manifest_dict(), warnings)
        assert not any(name.startswith("fleet.") for name in metrics)
        assert warnings == []

    def test_malformed_fleet_warns_not_raises(self):
        data = _manifest_dict()
        data["fleet"] = "corrupt"
        warnings = []
        metrics = extract_metrics(data, warnings)
        assert not any(name.startswith("fleet.") for name in metrics)
        assert any("fleet" in w for w in warnings)

    def test_malformed_tenant_fold_skipped(self):
        data = _manifest_dict()
        data["fleet"] = dict(_fleet_section(), tenants={"bad": [1]})
        warnings = []
        metrics = extract_metrics(data, warnings)
        assert metrics["fleet.hosts_done"] == 8.0
        assert not any(".tenant." in name for name in metrics)
        assert any("tenants" in w for w in warnings)

    def test_fleet_regression_gates(self):
        old = {"fleet.hosts_done": 8.0, "fleet.ingest_backlog_peak": 3.0}
        new = {"fleet.hosts_done": 6.0, "fleet.ingest_backlog_peak": 3.0}
        result = compare_metrics(old, new)
        assert not result.ok()
        assert any(d.name == "fleet.hosts_done" and d.verdict == "regression"
                   for d in result.deltas)
