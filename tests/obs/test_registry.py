"""Metrics-registry semantics: instruments, snapshot/reset, enable flag."""

import json

import pytest

from repro.obs import MetricsRegistry, get_registry, set_registry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_disabled_registry_counts_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x")
        counter.inc(100)
        assert counter.value == 0

    def test_enable_mid_run_takes_effect_on_cached_reference(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x")
        counter.inc()
        registry.enable()
        counter.inc()
        assert counter.value == 1
        registry.disable()
        counter.inc()
        assert counter.value == 1


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3.5)
        gauge.add(1.0)
        assert gauge.value == 4.5

    def test_disabled_gauge_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        gauge = registry.gauge("depth")
        gauge.set(9.0)
        assert gauge.value == 0.0


class TestHistogram:
    def test_bucketing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0, 0.2):
            hist.observe(value)
        assert hist.counts == [2, 1, 1, 1]
        assert hist.total == 5
        assert hist.mean == pytest.approx((0.5 + 5 + 50 + 500 + 0.2) / 5)

    def test_boundary_lands_in_lower_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 10.0))
        hist.observe(1.0)   # inclusive upper bound
        hist.observe(10.0)
        assert hist.counts == [1, 1, 0]

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(10.0, 1.0))

    def test_conflicting_buckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(5.0,))
        # Re-fetching without buckets is fine.
        assert registry.histogram("lat").bounds == (1.0, 2.0)


class TestNameCollisions:
    def test_counter_vs_gauge_collision(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")


class TestSnapshotReset:
    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        assert snap["histograms"]["h"]["total"] == 1

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h", buckets=(1.0,))
        counter.inc(7)
        hist.observe(0.5)
        registry.reset()
        assert counter.value == 0
        assert hist.total == 0 and hist.counts == [0, 0]
        # The cached reference is still live after reset.
        counter.inc()
        assert registry.snapshot()["counters"]["c"] == 1

    def test_snapshot_after_reset_is_empty_values(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        first = registry.snapshot()
        registry.reset()
        second = registry.snapshot()
        assert first["counters"] == {"c": 2}
        assert second["counters"] == {"c": 0}


class TestDefaultRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        mine = MetricsRegistry(enabled=True)
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            assert set_registry(previous) is mine
