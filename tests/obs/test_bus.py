"""Telemetry bus: heartbeats, the worker table, stall/recovery, drain."""

import queue as queue_module
import time

import pytest

from repro.obs.bus import (
    EVENT_LIMIT,
    TIMELINE_LIMIT,
    BusPublisher,
    TelemetryBus,
    WorkerTable,
    rss_bytes,
)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _heartbeat(worker="w0", phase="start", experiment="fig04",
               unit="scan-0", seq=0, t=1000.0, **extra):
    message = {
        "kind": "heartbeat", "worker": worker, "pid": 4711,
        "phase": phase, "experiment": experiment, "unit": unit,
        "seq": seq, "units_done": extra.pop("units_done", 0),
        "rss_bytes": extra.pop("rss_bytes", 50 << 20), "t": t,
    }
    message.update(extra)
    return message


class TestRssBytes:
    __test__ = True

    def test_returns_plausible_size_or_none(self):
        value = rss_bytes()
        # Never raises; on Linux it is this process's RSS in bytes.
        assert value is None or 1 << 20 < value < 1 << 44


class TestBusPublisher:
    __test__ = True

    def test_heartbeat_message_shape(self):
        q = queue_module.Queue()
        pub = BusPublisher(q, "w3", clock=lambda: 123.5)
        pub.heartbeat("start", experiment="fig04", unit="scan-2", seq=7)
        message = q.get_nowait()
        assert message["kind"] == "heartbeat"
        assert message["worker"] == "w3"
        assert message["phase"] == "start"
        assert message["experiment"] == "fig04"
        assert message["unit"] == "scan-2"
        assert message["seq"] == 7
        assert message["units_done"] == 0
        assert message["t"] == 123.5
        assert "wall_s" not in message
        assert pub.published == 1

    def test_finish_increments_units_done_and_carries_wall(self):
        q = queue_module.Queue()
        pub = BusPublisher(q, "w0")
        pub.heartbeat("start", unit="u1")
        pub.heartbeat("finish", unit="u1", wall_s=0.25)
        q.get_nowait()
        finish = q.get_nowait()
        assert finish["units_done"] == 1
        assert finish["wall_s"] == 0.25

    def test_counter_deltas_between_heartbeats(self):
        q = queue_module.Queue()
        pub = BusPublisher(q, "w0")
        pub.heartbeat("finish", unit="u1", counters={"tests": 10, "rows": 4})
        pub.heartbeat("finish", unit="u2", counters={"tests": 15, "rows": 4})
        first = q.get_nowait()
        second = q.get_nowait()
        assert first["metrics"] == {"tests": 10, "rows": 4}
        # Unchanged counters drop out of the delta entirely.
        assert second["metrics"] == {"tests": 5}

    def test_full_queue_drops_without_raising(self):
        q = queue_module.Queue(maxsize=1)
        pub = BusPublisher(q, "w0")
        pub.heartbeat("start", unit="u1")
        pub.heartbeat("start", unit="u2")  # queue full: dropped
        assert pub.published == 1
        assert pub.dropped == 1
        assert q.get_nowait()["unit"] == "u1"


class TestWorkerTable:
    __test__ = True

    def _table(self, stall_after_s=10.0):
        clock = FakeClock()
        return WorkerTable(stall_after_s=stall_after_s, clock=clock), clock

    def test_rejects_nonpositive_stall_budget(self):
        with pytest.raises(ValueError):
            WorkerTable(stall_after_s=0.0)

    def test_start_finish_builds_timeline(self):
        table, clock = self._table()
        table.observe(_heartbeat(phase="start", t=1000.0))
        row = table.observe(_heartbeat(
            phase="finish", t=1002.5, units_done=1, wall_s=2.5))
        assert row.state == "idle"
        assert row.units_done == 1
        assert row.open_interval is None
        assert row.timeline == [{
            "experiment": "fig04", "unit": "scan-0", "seq": 0,
            "t_start": 1000.0, "t_end": 1002.5, "wall_s": 2.5,
        }]

    def test_heartbeat_stall_recovery_cycle(self):
        """The satellite scenario: heartbeat -> stall -> recovery."""
        table, clock = self._table(stall_after_s=5.0)
        table.observe(_heartbeat(phase="start"))
        row = table.workers["w0"]
        assert row.state == "running"

        # Within budget: no stall.
        clock.advance(4.0)
        assert table.scan() == []
        assert row.state == "running"

        # Budget exceeded: newly stalled, reported exactly once.
        clock.advance(2.0)
        assert table.scan() == ["w0"]
        assert row.state == "stalled"
        assert row.stalls == 1
        assert table.scan() == []  # already stalled: not "newly"

        # Any heartbeat recovers the worker.
        table.observe(_heartbeat(phase="ping", unit=None))
        assert row.state == "running"  # unit still open
        assert row.recoveries == 1
        assert table.scan() == []

    def test_idle_workers_never_stall(self):
        table, clock = self._table(stall_after_s=1.0)
        table.observe(_heartbeat(phase="start", t=1000.0))
        table.observe(_heartbeat(phase="finish", t=1001.0, units_done=1))
        clock.advance(60.0)
        assert table.scan() == []
        assert table.workers["w0"].state == "idle"

    def test_mark_lost_by_pid_and_label(self):
        table, _clock = self._table()
        table.observe(_heartbeat(worker="w0"))
        table.observe(_heartbeat(worker="w1", pid=9999))
        assert [r.label for r in table.mark_lost(pid=4711)] == ["w0"]
        assert [r.label for r in table.mark_lost(label="w1")] == ["w1"]
        assert table.mark_lost(label="w1") == []  # already lost
        assert table.workers["w0"].state == "lost"

    def test_in_flight_and_rss_peak(self):
        table, _clock = self._table()
        table.observe(_heartbeat(worker="w0", rss_bytes=80 << 20))
        table.observe(_heartbeat(
            worker="w0", phase="ping", rss_bytes=60 << 20))
        table.observe(_heartbeat(
            worker="w1", phase="finish", units_done=1))
        assert [r.label for r in table.in_flight()] == ["w0"]
        assert table.workers["w0"].rss_peak_bytes == 80 << 20
        assert table.workers["w0"].rss_bytes == 60 << 20
        assert table.units_done == 1

    def test_timeline_is_bounded(self):
        table, _clock = self._table()
        for i in range(TIMELINE_LIMIT + 25):
            table.observe(_heartbeat(phase="start", unit=f"u{i}", t=float(i)))
            table.observe(_heartbeat(
                phase="finish", unit=f"u{i}", t=float(i), units_done=i + 1))
        timeline = table.workers["w0"].timeline
        assert len(timeline) == TIMELINE_LIMIT
        assert timeline[-1]["unit"] == f"u{TIMELINE_LIMIT + 24}"

    def test_render_rows_and_to_dict(self):
        table, clock = self._table()
        table.observe(_heartbeat(rss_bytes=64 << 20))
        lines = table.render_rows()
        assert len(lines) == 1
        assert "w0: fig04/scan-0" in lines[0]
        assert "rss 64MB" in lines[0]
        assert "hb 0s ago" in lines[0]
        data = table.to_dict()
        assert data["messages"] == 1
        (row,) = data["workers"]
        assert row["label"] == "w0"
        # The open interval is visible in the exported timeline.
        assert row["timeline"][-1]["t_end"] is None

    def test_stalled_row_renders_flag(self):
        table, clock = self._table(stall_after_s=1.0)
        table.observe(_heartbeat())
        clock.advance(5.0)
        table.scan()
        (line,) = table.render_rows()
        assert "STALLED fig04/scan-0" in line


class TestTelemetryBus:
    __test__ = True

    def _bus(self, **kwargs):
        clock = FakeClock()
        return TelemetryBus(clock=clock, **kwargs), clock

    def test_publisher_roundtrip_through_real_queue(self):
        bus, _clock = self._bus()
        try:
            pub = bus.publisher("w0")
            pub.heartbeat("start", experiment="fig04", unit="scan-1", seq=1)
            pub.heartbeat("finish", experiment="fig04", unit="scan-1",
                          seq=1, wall_s=0.5)
            # mp.Queue hands messages to a feeder thread; poll briefly.
            drained, deadline = 0, 200
            while drained < 2 and deadline:
                drained += bus.drain(scan=False)
                time.sleep(0.005)
                deadline -= 1
            assert drained == 2
            row = bus.table.workers["w0"]
            assert row.units_done == 1
            assert row.timeline[0]["unit"] == "scan-1"
        finally:
            bus.close()

    def test_drain_forwards_to_sink_and_records_events(self):
        class ListSink:
            def __init__(self):
                self.records = []

            def emit(self, record):
                self.records.append(record)

        bus, _clock = self._bus()
        try:
            sink = ListSink()
            bus.queue.put({"kind": "heartbeat", "worker": "w0",
                           "phase": "start", "t": 1.0})
            bus.queue.put({"kind": "weird", "payload": 1})
            drained, deadline = 0, 200
            while drained < 2 and deadline:
                drained += bus.drain(sink=sink, scan=False)
                time.sleep(0.005)
                deadline -= 1
            assert drained == 2
            assert len(sink.records) == 2
            # Non-heartbeat messages land in the event log, not the table.
            assert bus.events[-1]["kind"] == "weird"
            assert list(bus.table.workers) == ["w0"]
        finally:
            bus.close()

    def test_record_event_is_bounded(self):
        bus, _clock = self._bus()
        try:
            for i in range(EVENT_LIMIT + 10):
                bus.record_event("retry", unit=f"u{i}")
            assert len(bus.events) == EVENT_LIMIT
            assert bus.events[-1]["unit"] == f"u{EVENT_LIMIT + 9}"
        finally:
            bus.close()

    def test_to_dict_shape(self):
        bus, _clock = self._bus()
        try:
            bus.record_event("timeout", units=["fig04/scan-0"])
            data = bus.to_dict()
            assert set(data) >= {"stall_after_s", "messages", "workers",
                                 "events", "drained"}
            assert data["events"][0]["kind"] == "timeout"
        finally:
            bus.close()

    def test_close_is_idempotent_and_drains(self):
        bus, _clock = self._bus()
        pub = bus.publisher("w0")
        pub.heartbeat("start", unit="u0")
        deadline = 200
        while bus.table.messages < 1 and deadline:
            bus.drain(scan=False)
            time.sleep(0.005)
            deadline -= 1
        bus.close()
        bus.close()
        assert bus.table.messages == 1
