"""Static HTML dashboard: section rendering, fallbacks, the CLI."""

import json

import pytest

from repro.obs.dashboard import main, render_dashboard


def _manifest(**overrides):
    data = {
        "schema": 1,
        "experiments": ["fig14"],
        "seed": 42,
        "quick": True,
        "config": {"jobs": 2},
        "git_rev": "abcdef1234567890",
        "python": "3.12.0",
        "platform": "Linux",
        "wall_s": 12.5,
        "timings": [{"name": "fig14", "wall_s": 12.0}],
        "spans": {
            "name": "run", "elapsed_s": 12.5, "count": 1,
            "children": [
                {"name": "fig14", "elapsed_s": 12.0, "count": 1,
                 "children": []},
            ],
        },
        "metrics": None,
        "timeseries": None,
        "trace_path": None,
        "workers": None,
        "profile": None,
    }
    data.update(overrides)
    return data


def _window(t_ms, ref=True, tests=(3, 2, 1, 0), mc=False):
    started, passed, failed, aborted = tests
    w = {
        "index": int(t_ms // 1024),
        "t_ms": t_ms,
        "tests": {"started": started, "passed": passed,
                  "failed": failed, "aborted": aborted},
        "ref": None,
        "mc": None,
    }
    if ref:
        w["ref"] = {
            "lo_rows": 10, "testing_rows": 2, "total_rows": 64,
            "lo_fraction": 10 / 64, "testing_fraction": 2 / 64,
            "hi_fraction": 52 / 64,
        }
    if mc:
        w["mc"] = {
            "requests": 100, "refreshes": 4, "refresh_per_s": 2.0,
            "latency_mean_ns": 120.0, "latency_p50_ns": 100.0,
            "latency_p95_ns": 300.0, "latency_p99_ns": 700.0,
        }
    return w


def _timeseries(n_windows=4, **window_kwargs):
    return {
        "window_ms": 1024.0,
        "events_total": 6 * n_windows,
        "kinds": {"test_started": 3 * n_windows,
                  "ref_transition": 2 * n_windows},
        "windows": [
            _window(1024.0 * i, **window_kwargs) for i in range(n_windows)
        ],
        "pril": [],
        "energy": None,
    }


def _telemetry():
    return {
        "stall_after_s": 10.0,
        "messages": 4,
        "drained": 4,
        "events": [],
        "workers": [
            {
                "label": "worker-g1-1", "pid": 11, "state": "idle",
                "experiment": "fig14", "unit": "scan-1", "units_done": 2,
                "heartbeats": 4, "stalls": 0, "recoveries": 0,
                "rss_peak_bytes": 64 << 20,
                "first_t": 1000.0, "last_t": 1004.0,
                "timeline": [
                    {"experiment": "fig14", "unit": "scan-0", "seq": 0,
                     "t_start": 1000.0, "t_end": 1002.0, "wall_s": 2.0},
                    {"experiment": "fig14", "unit": "scan-1", "seq": 1,
                     "t_start": 1002.0, "t_end": 1004.0, "wall_s": 2.0},
                ],
                "counters": {},
            },
            {
                "label": "worker-g1-2", "pid": 12, "state": "stalled",
                "experiment": "fig14", "unit": "scan-2", "units_done": 0,
                "heartbeats": 1, "stalls": 1, "recoveries": 0,
                "rss_peak_bytes": 80 << 20,
                "first_t": 1000.5, "last_t": 1000.5,
                "timeline": [
                    {"experiment": "fig14", "unit": "scan-2", "seq": 2,
                     "t_start": 1000.5, "t_end": None},
                ],
                "counters": {},
            },
        ],
    }


class TestRenderDashboard:
    __test__ = True

    def test_minimal_manifest_renders_standalone_page(self):
        html = render_dashboard(_manifest())
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "fig14" in html
        # Span-tree flame fallback renders even without a profile.
        assert "Where the time went" in html
        assert html.count("<svg") >= 1

    def test_timeseries_sections(self):
        html = render_dashboard(
            _manifest(timeseries=_timeseries(mc=True))
        )
        assert "LO-REF coverage" in html
        assert "Test outcomes" in html
        assert "Request latency percentiles" in html
        assert "Disturb pressure" not in html
        assert html.count("<svg") >= 3
        # Every chart keeps a no-JS data-table fallback.
        assert "Data table" in html

    def test_lifecycle_only_trace_falls_back_to_event_census(self):
        timeseries = _timeseries(n_windows=0)
        html = render_dashboard(_manifest(timeseries=timeseries))
        assert "Event census" in html
        assert "test_started" in html

    def test_disturb_section_only_when_tracked(self):
        timeseries = _timeseries()
        for w in timeseries["windows"]:
            w["disturb"] = {"flips": 1, "rows_flipped": 1,
                            "max_pressure": 0.5}
        html = render_dashboard(_manifest(timeseries=timeseries))
        assert "Disturb pressure" in html

    def test_profile_flame_preferred_over_spans(self):
        profile = {
            "interval_s": 0.005, "wall_s": 10.0, "sample_count": 2000,
            "attributed_fraction": 0.98, "rss_peak_bytes": 100 << 20,
            "stacks": {"run;fig15;sim.run": 1900, "run;fig15": 60,
                       "run": 40},
        }
        html = render_dashboard(_manifest(profile=profile))
        assert "2000 samples" in html
        assert "sim.run" in html

    def test_worker_timeline_gantt(self):
        workers = {
            "jobs": 2, "start_method": "fork",
            "stats": {"executed": 3, "retried": 0},
            "telemetry": _telemetry(),
        }
        html = render_dashboard(_manifest(workers=workers))
        assert "Worker timeline" in html
        assert "worker-g1-1" in html
        assert "stalled" in html
        assert "scan-0" in html  # interval tooltip

    def test_bench_sparklines(self):
        bench = {"BENCH_obs.json": {
            "faultmap_scan": {
                "wall_s": 1.0, "jobs": 1, "recorded_at": "2026-01-01",
                "history": [{"wall_s": 1.4}, {"wall_s": 1.2}],
            },
        }}
        html = render_dashboard(_manifest(), bench_files=bench)
        assert "Benchmark trajectories" in html
        assert "faultmap_scan.wall_s" in html

    def test_single_history_entry_yields_no_sparkline(self):
        bench = {"BENCH_obs.json": {
            "lonely": {"wall_s": 1.0, "history": []},
        }}
        html = render_dashboard(_manifest(), bench_files=bench)
        assert "lonely" not in html

    def test_text_is_escaped(self):
        html = render_dashboard(
            _manifest(experiments=["<script>alert(1)</script>"])
        )
        assert "<script>alert" not in html


class TestCli:
    __test__ = True

    def _write_manifest(self, tmp_path, **overrides):
        path = tmp_path / "run.manifest.json"
        path.write_text(json.dumps(_manifest(**overrides)))
        return path

    def test_renders_next_to_manifest(self, tmp_path, capsys):
        path = self._write_manifest(
            tmp_path, timeseries=_timeseries(mc=True))
        assert main([str(path)]) == 0
        out = tmp_path / "run.manifest.html"
        assert out.exists()
        assert "LO-REF coverage" in out.read_text()
        assert str(out) in capsys.readouterr().out

    def test_offline_aggregation_from_trace(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        records = [
            {"v": 1, "kind": "test_started", "t_ms": 10.0, "page": 1},
            {"v": 1, "kind": "test_passed", "t_ms": 80.0, "page": 1},
        ]
        trace.write_text(
            "".join(json.dumps(r) + "\n" for r in records))
        path = self._write_manifest(tmp_path)  # no stored timeseries
        out = tmp_path / "dash.html"
        assert main([str(path), str(trace), "--out", str(out)]) == 0
        assert "Test outcomes" in out.read_text()

    def test_bench_flag(self, tmp_path):
        bench = tmp_path / "BENCH_obs.json"
        bench.write_text(json.dumps({
            "scan": {"wall_s": 1.0, "history": [{"wall_s": 1.5}]},
        }))
        path = self._write_manifest(tmp_path)
        out = tmp_path / "dash.html"
        assert main([str(path), "--bench", str(bench),
                     "--out", str(out)]) == 0
        assert "scan.wall_s" in out.read_text()

    def test_unreadable_bench_is_warning_not_error(self, tmp_path, capsys):
        path = self._write_manifest(tmp_path)
        out = tmp_path / "dash.html"
        assert main([str(path), "--bench", str(tmp_path / "missing.json"),
                     "--out", str(out)]) == 0
        assert "skipping" in capsys.readouterr().err

    def test_rejects_non_manifest(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text("{}")
        with pytest.raises(ValueError):
            main([str(bogus)])


class TestHostileNames:
    """Every interpolated name must render inert: a unit named ``<b>x``
    (or worse) shows up as text, never as markup."""

    HOSTILE = '<script>alert(1)</script><b class="x">'

    def _assert_inert(self, html_text):
        assert "<script" not in html_text
        assert '<b class="x">' not in html_text
        assert "&lt;script&gt;" in html_text

    def test_hostile_experiment_name(self):
        html_text = render_dashboard(_manifest(experiments=[self.HOSTILE]))
        self._assert_inert(html_text)

    def test_hostile_worker_and_unit_names(self):
        telemetry = _telemetry()
        worker = telemetry["workers"][0]
        worker["label"] = self.HOSTILE
        worker["state"] = self.HOSTILE
        worker["timeline"][0]["experiment"] = self.HOSTILE
        worker["timeline"][0]["unit"] = self.HOSTILE
        # Non-numeric junk in numeric columns must escape too (_fmt
        # falls through to str for non-numbers).
        worker["units_done"] = self.HOSTILE
        worker["rss_peak_bytes"] = 0
        html_text = render_dashboard(_manifest(workers={
            "jobs": 2, "start_method": self.HOSTILE,
            "stats": {}, "telemetry": telemetry,
        }))
        self._assert_inert(html_text)

    def test_hostile_profile_stack_names(self):
        html_text = render_dashboard(_manifest(profile={
            "sample_count": 4, "interval_s": 0.01,
            "attributed_fraction": 1.0, "rss_peak_bytes": 1 << 20,
            "stacks": {self.HOSTILE: 4},
        }))
        self._assert_inert(html_text)

    def test_hostile_span_names(self):
        html_text = render_dashboard(_manifest(spans={
            "name": self.HOSTILE, "elapsed_s": 1.0, "count": 1,
            "children": [],
        }))
        self._assert_inert(html_text)

    def test_hostile_forensics_census(self):
        html_text = render_dashboard(_manifest(forensics={
            "records": 5, "rows": 2,
            "kinds": {self.HOSTILE: 5},
            "verdicts": {self.HOSTILE: 2},
            "ledger_path": "l.jsonl",
        }))
        self._assert_inert(html_text)

    def test_hostile_timeseries_strings(self):
        # A hostile string in a window only the data table renders
        # (charts skip windows without ref/tests/mc data).
        timeseries = _timeseries()
        timeseries["windows"].append({
            "index": 99, "t_ms": self.HOSTILE,
            "tests": {"started": 0, "passed": 0, "failed": 0, "aborted": 0},
            "ref": None, "mc": None,
        })
        html_text = render_dashboard(
            _manifest(), timeseries=timeseries
        )
        self._assert_inert(html_text)


class TestForensicsSection:
    def test_census_rendered(self):
        html_text = render_dashboard(_manifest(forensics={
            "records": 631, "rows": 12,
            "kinds": {"forensic_row": 5, "pril_grant": 600},
            "verdicts": {"composed": 3, "memcon-miss": 2},
            "ledger_path": "run.forensics.jsonl",
        }))
        assert "Failure forensics" in html_text
        assert "composed" in html_text
        assert "repro.obs.why" in html_text
        assert "run.forensics.jsonl" in html_text

    def test_absent_without_census(self):
        assert "Failure forensics" not in render_dashboard(_manifest())

    def test_malformed_census_ignored(self):
        html_text = render_dashboard(_manifest(forensics=[1, 2]))
        assert "Failure forensics" not in html_text


class TestFleetSection:
    def _fleet(self):
        return {
            "hosts": {"done": 8, "failed": 1},
            "tenants": {
                "web": {
                    "hosts_done": 4, "hosts_failed": 0,
                    "coverage": {"mean": 0.62, "p50": 0.6, "p95": 0.7},
                    "refresh_reduction_mean": 0.55,
                    "tests": {"total": 40},
                    "pril_hit_rate": 0.9,
                    "test_bandwidth_per_s": 5.0,
                },
            },
            "coverage": {"mean": 0.6,
                         "bin_edges": [0.0, 0.5, 1.0],
                         "bin_counts": [3, 5]},
            "wall": {"hosts_timed": 8, "p50_s": 0.2, "p95_s": 0.5,
                     "p99_s": 0.6, "max_s": 0.7},
            "tests": {"total": 80, "bandwidth_per_s": 9.5},
            "pril_hit_rate": 0.88,
            "ingest": {"records": 1200, "backlog_peak": 3},
            "resident_rows": {"peak": 120, "evicted": 900.0},
            "trace_cache": {"hits": 5.0, "misses": 7.0},
        }

    def test_fleet_rendered(self):
        html_text = render_dashboard(_manifest(fleet=self._fleet()))
        assert "<h2>Fleet</h2>" in html_text
        assert "web" in html_text
        assert "coverage" in html_text
        assert "backlog peak" in html_text

    def test_absent_without_fleet(self):
        assert "<h2>Fleet</h2>" not in render_dashboard(_manifest())

    def test_malformed_fleet_ignored(self):
        html_text = render_dashboard(_manifest(fleet=[1, 2]))
        assert "<h2>Fleet</h2>" not in html_text

    def test_hostile_tenant_name_escaped(self):
        fleet = self._fleet()
        fleet["tenants"]["<script>alert(1)</script>"] = (
            fleet["tenants"]["web"])
        html_text = render_dashboard(_manifest(fleet=fleet))
        assert "<script>alert(1)" not in html_text
