"""Streaming analytics: TeeSink fan-out and AggregatingSink rollups."""

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import MemconConfig, MemconController
from repro.obs.analytics import (
    LATENCY_BUCKET_BOUNDS_NS,
    AggregatingSink,
    TeeSink,
    _percentile_from_buckets,
    aggregate_trace,
)
from repro.traces.events import WriteTrace

V = obs.SCHEMA_VERSION


def _rec(kind, **fields):
    record = {"v": V, "kind": kind}
    record.update(fields)
    return record


class TestTeeSink:
    __test__ = True

    def test_fans_out_in_order(self):
        first, second = obs.ListTraceSink(), obs.ListTraceSink()
        tee = TeeSink(first, second)
        tee.emit(_rec("run_started", experiments=["fig06"]))
        tee.emit(_rec("run_finished", wall_s=1.0))
        assert [r["kind"] for r in first.records] == [
            "run_started", "run_finished"]
        assert first.records == second.records

    def test_needs_at_least_one_sink(self):
        with pytest.raises(ValueError):
            TeeSink()

    def test_close_closes_closable_children(self):
        stream = io.StringIO()
        jsonl = obs.JsonlTraceSink(stream)
        listsink = obs.ListTraceSink()  # has no close(); must not break
        tee = TeeSink(jsonl, listsink)
        tee.emit(_rec("run_finished", wall_s=0.5))
        tee.close()
        assert json.loads(stream.getvalue())["kind"] == "run_finished"

    def test_close_raises_first_error_but_closes_all(self):
        class Exploding:
            closed = False

            def emit(self, record):
                pass

            def close(self):
                self.closed = True
                raise RuntimeError("boom")

        a, b = Exploding(), Exploding()
        tee = TeeSink(a, b)
        with pytest.raises(RuntimeError):
            tee.close()
        assert a.closed and b.closed


class TestAggregatingSinkUnits:
    __test__ = True

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AggregatingSink(window_ms=0.0)
        with pytest.raises(ValueError):
            AggregatingSink(total_pages=0)

    def test_ref_population_sampled_per_window(self):
        sink = AggregatingSink(window_ms=100.0, total_pages=4)
        sink.emit(_rec("ref_transition", t_ms=10.0, page=0,
                       **{"from": "hi_ref", "to": "lo_ref"}))
        sink.emit(_rec("ref_transition", t_ms=20.0, page=1,
                       **{"from": "hi_ref", "to": "testing"}))
        # Crossing into window 1 samples window 0's closing state.
        sink.emit(_rec("ref_transition", t_ms=150.0, page=1,
                       **{"from": "testing", "to": "hi_ref"}))
        rollup = sink.to_dict()
        by_index = {w["index"]: w for w in rollup["windows"]}
        assert by_index[0]["ref"] == {
            "lo_rows": 1, "testing_rows": 1, "total_rows": 4,
            "lo_fraction": 0.25, "testing_fraction": 0.25,
            "hi_fraction": 0.5,
        }
        # The in-progress window is sampled at to_dict() time.
        assert by_index[1]["ref"]["testing_rows"] == 0
        assert by_index[1]["ref"]["lo_rows"] == 1

    def test_live_counters_track_population(self):
        sink = AggregatingSink()
        assert sink.rows_lo == 0 and sink.tests_outstanding == 0
        sink.emit(_rec("test_started", t_ms=0.0, page=3))
        assert sink.tests_outstanding == 1
        sink.emit(_rec("ref_transition", t_ms=0.0, page=3,
                       **{"from": "hi_ref", "to": "testing"}))
        assert sink.rows_testing == 1
        sink.emit(_rec("test_passed", t_ms=64.0, page=3))
        sink.emit(_rec("ref_transition", t_ms=64.0, page=3,
                       **{"from": "testing", "to": "lo_ref"}))
        assert sink.tests_outstanding == 0
        assert sink.rows_lo == 1

    def test_test_outcomes_counted_in_their_own_window(self):
        sink = AggregatingSink(window_ms=100.0)
        sink.emit(_rec("test_started", t_ms=90.0, page=1))
        sink.emit(_rec("test_passed", t_ms=190.0, page=1))
        rollup = sink.to_dict()
        by_index = {w["index"]: w for w in rollup["windows"]}
        assert by_index[0]["tests"]["started"] == 1
        assert by_index[0]["tests"]["passed"] == 0
        assert by_index[1]["tests"]["passed"] == 1

    def test_pril_hit_rate_attribution(self):
        sink = AggregatingSink()
        sink.emit(_rec("pril_quantum", quantum=1, predicted=2, buffer=5))
        sink.emit(_rec("test_started", t_ms=1024.0, page=1))
        sink.emit(_rec("test_started", t_ms=1024.0, page=2))
        sink.emit(_rec("test_passed", t_ms=1088.0, page=1))
        sink.emit(_rec("test_aborted", t_ms=1100.0, page=2))
        (quantum,) = sink.to_dict()["pril"]
        assert quantum["predicted"] == 2
        assert quantum["started"] == 2
        assert quantum["resolved"] == 1
        assert quantum["aborted"] == 1
        assert quantum["hit_rate"] == 0.5

    def test_read_only_tests_do_not_pollute_pril(self):
        sink = AggregatingSink()
        # Start-up read-only sweep happens before any pril_quantum event.
        sink.emit(_rec("test_started", t_ms=0.0, page=9))
        sink.emit(_rec("test_passed", t_ms=64.0, page=9))
        sink.emit(_rec("pril_quantum", quantum=1, predicted=0, buffer=0))
        (quantum,) = sink.to_dict()["pril"]
        assert quantum["started"] == 0 and quantum["resolved"] == 0

    def test_mc_window_latency_and_refresh_bandwidth(self):
        sink = AggregatingSink(window_ms=1.0)  # 1 ms windows = 1e6 ns
        for latency in (30.0, 30.0, 30.0, 900.0):
            sink.emit(_rec("mc_request", t_ns=5_000.0, kind_served="read",
                           bank=0, latency_ns=latency))
        sink.emit(_rec("mc_refresh", t_ns=5_000.0, channel=0))
        sink.emit(_rec("mc_refresh", t_ns=9_000.0, channel=0))
        (window,) = sink.to_dict()["windows"]
        mc = window["mc"]
        assert mc["requests"] == 4
        assert mc["latency_p50_ns"] == 50.0     # 3 of 4 in (25, 50]
        assert mc["latency_p95_ns"] == 1600.0   # tail bucket bound
        assert mc["latency_mean_ns"] == pytest.approx((3 * 30 + 900) / 4)
        assert mc["refreshes"] == 2
        assert mc["refresh_per_s"] == pytest.approx(2 / 1e-3)

    def test_latency_beyond_last_bound_reports_none(self):
        sink = AggregatingSink(window_ms=1.0)
        sink.emit(_rec("mc_request", t_ns=0.0, kind_served="read",
                       bank=0, latency_ns=LATENCY_BUCKET_BOUNDS_NS[-1] * 10))
        (window,) = sink.to_dict()["windows"]
        assert window["mc"]["latency_p50_ns"] is None

    def test_energy_rollups_accumulate(self):
        sink = AggregatingSink()
        sink.emit(_rec("energy_rollup", window_ns=1e6, refresh_pj=10.0,
                       access_pj=5.0, background_pj=1.0, channel=0))
        sink.emit(_rec("energy_rollup", window_ns=1e6, refresh_pj=20.0,
                       access_pj=5.0, background_pj=1.0, channel=1))
        energy = sink.to_dict()["energy"]
        assert len(energy["rollups"]) == 2
        assert energy["rollups"][1]["channel"] == 1
        assert energy["totals"] == {
            "refresh_pj": 30.0, "access_pj": 10.0, "background_pj": 2.0,
        }

    def test_to_dict_is_idempotent(self):
        sink = AggregatingSink(window_ms=100.0)
        sink.emit(_rec("test_started", t_ms=42.0, page=1))
        sink.emit(_rec("ref_transition", t_ms=42.0, page=1,
                       **{"from": "hi_ref", "to": "testing"}))
        first = sink.to_dict()
        assert sink.to_dict() == first

    def test_unknown_kinds_only_counted(self):
        sink = AggregatingSink()
        sink.emit(_rec("softmc_phase", phase="fill", rows=8))
        rollup = sink.to_dict()
        assert rollup["events_total"] == 1
        assert rollup["kinds"] == {"softmc_phase": 1}
        assert rollup["windows"] == []

    def test_disturb_rollups_fold_per_window(self):
        sink = AggregatingSink(window_ms=100.0)
        sink.emit(_rec("disturb_rollup", t_ms=10.0, flips=3,
                       rows_flipped=2, max_pressure=7.5))
        sink.emit(_rec("disturb_rollup", t_ms=20.0, flips=4,
                       rows_flipped=1, max_pressure=5.0))
        sink.emit(_rec("disturb_rollup", t_ms=150.0, flips=1,
                       rows_flipped=1, max_pressure=9.0))
        rollup = sink.to_dict()
        by_index = {w["index"]: w for w in rollup["windows"]}
        # Sums within a window, max of the pressure high-water mark.
        assert by_index[0]["disturb"] == {
            "flips": 7, "rows_flipped": 3, "max_pressure": 7.5,
        }
        assert by_index[1]["disturb"] == {
            "flips": 1, "rows_flipped": 1, "max_pressure": 9.0,
        }
        assert rollup["disturb"]["totals"] == {
            "flips": 8, "rows_flipped": 4, "max_pressure": 9.0,
        }

    def test_disturb_absent_without_events(self):
        sink = AggregatingSink(window_ms=100.0)
        sink.emit(_rec("test_started", t_ms=10.0, page=1))
        rollup = sink.to_dict()
        # Untracked runs keep their rollup shape: no disturb keys at all.
        assert "disturb" not in rollup
        assert all("disturb" not in w for w in rollup["windows"])


class TestPercentileFromBuckets:
    """Edge semantics of the bucketed-percentile helper."""

    BOUNDS = (10.0, 100.0, 1000.0)

    def test_empty_histogram_returns_none(self):
        assert _percentile_from_buckets(
            self.BOUNDS, [0, 0, 0], 0, 0.5) is None

    def test_negative_total_returns_none(self):
        assert _percentile_from_buckets(
            self.BOUNDS, [0, 0, 0], -1, 0.5) is None

    def test_single_observation_hits_its_bucket_bound(self):
        assert _percentile_from_buckets(
            self.BOUNDS, [0, 1, 0], 1, 0.5) == 100.0
        assert _percentile_from_buckets(
            self.BOUNDS, [0, 1, 0], 1, 0.99) == 100.0

    def test_overflow_bucket_returns_none(self):
        # All mass beyond every bound: the true value is unknown.
        assert _percentile_from_buckets(
            self.BOUNDS, [0, 0, 0], 5, 0.5) is None

    def test_quantile_walks_cumulative_counts(self):
        counts = [3, 1, 0]
        assert _percentile_from_buckets(self.BOUNDS, counts, 4, 0.50) == 10.0
        assert _percentile_from_buckets(self.BOUNDS, counts, 4, 0.75) == 10.0
        assert _percentile_from_buckets(self.BOUNDS, counts, 4, 0.95) == 100.0


def _memcon_trace(seed, pages=64, quanta=6):
    rng = np.random.default_rng(seed)
    duration_ms = quanta * 1024.0
    writes = {}
    for page in range(pages):
        if page % 5 == 4:
            continue  # keep some read-only pages
        count = int(rng.integers(1, 8))
        times = np.sort(rng.uniform(0.0, duration_ms - 1.0, size=count))
        writes[page] = times.astype(np.float64)
    return WriteTrace(duration_ms=duration_ms, writes=writes,
                      total_pages=pages, name=f"analytics-{seed}")


class TestOfflineOnlineEquivalence:
    """ISSUE 3 property: offline aggregation of the JSONL file equals the
    in-process rollups for the same run, events having round-tripped
    through JSON."""

    __test__ = True

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_memcon_run_round_trips(self, tmp_path_factory, seed):
        trace = _memcon_trace(seed)
        path = str(tmp_path_factory.mktemp("traces") / f"t{seed}.jsonl")
        aggregator = obs.AggregatingSink(window_ms=1024.0,
                                         total_pages=trace.total_pages)
        jsonl = obs.JsonlTraceSink(path)
        previous = obs.set_sink(TeeSink(jsonl, aggregator))
        try:
            controller = MemconController(
                total_pages=trace.total_pages,
                config=MemconConfig(quantum_ms=1024.0),
                fails=lambda page: page % 7 == 0,
            )
            controller.run(trace)
        finally:
            obs.set_sink(previous)
            jsonl.close()
        offline = aggregate_trace(
            obs.read_trace(path), window_ms=1024.0,
            total_pages=trace.total_pages,
        )
        assert offline == aggregator.to_dict()

    def test_system_sim_run_round_trips(self, tmp_path):
        from repro.sim import simulate_workload

        path = str(tmp_path / "sim.jsonl")
        aggregator = obs.AggregatingSink(window_ms=0.05)
        jsonl = obs.JsonlTraceSink(path)
        previous = obs.set_sink(TeeSink(jsonl, aggregator))
        try:
            simulate_workload(["mcf"], window_ns=200_000.0, channels=2)
        finally:
            obs.set_sink(previous)
            jsonl.close()
        online = aggregator.to_dict()
        offline = aggregate_trace(obs.read_trace(path), window_ms=0.05)
        assert offline == online
        # The run must have produced controller and energy telemetry.
        assert online["kinds"]["mc_request"] > 0
        assert online["energy"] is not None
        assert len(online["energy"]["rollups"]) == 2  # one per channel
        assert any(w["mc"] for w in online["windows"])


class TestMemconRollupSemantics:
    """End-to-end: rollups reconcile with the controller's own report."""

    __test__ = True

    def test_rollup_totals_match_report(self):
        trace = _memcon_trace(seed=3)
        aggregator = obs.AggregatingSink(window_ms=1024.0,
                                         total_pages=trace.total_pages)
        previous = obs.set_sink(aggregator)
        try:
            controller = MemconController(
                total_pages=trace.total_pages,
                config=MemconConfig(quantum_ms=1024.0),
            )
            report = controller.run(trace)
        finally:
            obs.set_sink(previous)
        rollup = aggregator.to_dict()
        tests = [w["tests"] for w in rollup["windows"]]
        assert sum(t["started"] for t in tests) == report.tests_total
        assert sum(t["aborted"] for t in tests) == report.tests_aborted
        assert sum(t["failed"] for t in tests) == report.tests_failed
        # Every test resolves, so nothing stays outstanding at the end.
        assert aggregator.tests_outstanding == 0
        # PRIL quanta: every started test was attributed somewhere, and
        # predictions match the pril_quantum events' own counts.
        pril_started = sum(q["started"] for q in rollup["pril"])
        read_only = trace.total_pages - len(trace.writes)
        assert pril_started == report.tests_total - read_only
        for quantum in rollup["pril"]:
            assert quantum["started"] == quantum["predicted"]
            assert quantum["resolved"] + quantum["aborted"] == (
                quantum["started"]
            )
