"""Span-timing semantics: nesting, merging, decorator, no-op behaviour."""

import pytest

from repro.obs import (
    SpanCollector,
    collect_spans,
    get_collector,
    set_collector,
    span,
    timed,
)


class TestNesting:
    def test_nested_spans_build_a_tree(self):
        with collect_spans() as collector:
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner2"):
                    pass
        tree = collector.to_dict()
        assert tree["name"] == "run"
        (outer,) = tree["children"]
        assert outer["name"] == "outer"
        assert {c["name"] for c in outer["children"]} == {"inner", "inner2"}

    def test_repeated_spans_merge_with_counts(self):
        with collect_spans() as collector:
            for _ in range(5):
                with span("step"):
                    pass
        (step,) = collector.to_dict()["children"]
        assert step["count"] == 5
        assert step["elapsed_s"] >= 0.0

    def test_same_name_under_different_parents_stays_separate(self):
        with collect_spans() as collector:
            with span("a"):
                with span("leaf"):
                    pass
            with span("b"):
                with span("leaf"):
                    pass
        tree = collector.to_dict()
        names = {c["name"]: c for c in tree["children"]}
        assert [c["name"] for c in names["a"]["children"]] == ["leaf"]
        assert [c["name"] for c in names["b"]["children"]] == ["leaf"]

    def test_depth_tracks_open_spans(self):
        with collect_spans() as collector:
            assert collector.depth == 0
            with span("a"):
                assert collector.depth == 1
                with span("b"):
                    assert collector.depth == 2
            assert collector.depth == 0

    def test_elapsed_accumulates_time(self):
        import time

        with collect_spans() as collector:
            with span("sleepy"):
                time.sleep(0.01)
        (node,) = collector.to_dict()["children"]
        assert node["elapsed_s"] >= 0.005

    def test_exception_still_closes_span(self):
        with collect_spans() as collector:
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("x")
            assert collector.depth == 0


class TestNoCollector:
    def test_span_is_noop_without_collector(self):
        previous = set_collector(None)
        try:
            with span("free"):
                pass  # must not raise
            assert get_collector() is None
        finally:
            set_collector(previous)

    def test_collect_spans_restores_previous_collector(self):
        outer = SpanCollector()
        previous = set_collector(outer)
        try:
            with collect_spans() as inner:
                assert get_collector() is inner
            assert get_collector() is outer
        finally:
            set_collector(previous)


class TestTimedDecorator:
    def test_decorator_records_span(self):
        @timed("my.fn")
        def work(x):
            return x * 2

        with collect_spans() as collector:
            assert work(21) == 42
        (node,) = collector.to_dict()["children"]
        assert node["name"] == "my.fn"
        assert node["count"] == 1

    def test_decorator_defaults_to_qualname(self):
        @timed()
        def some_function():
            return 1

        with collect_spans() as collector:
            some_function()
        (node,) = collector.to_dict()["children"]
        assert "some_function" in node["name"]


class TestOutOfOrder:
    def test_out_of_order_close_raises(self):
        collector = SpanCollector()
        a = collector.open("a")
        collector.open("b")
        with pytest.raises(RuntimeError):
            collector.close(a, 0.0)
