"""Counterfactual replay: property-checked against the direct predicates,
plus the why-CLI's causal chains for the two acceptance scenarios."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.obs import why
from repro.obs.forensics import classify_verdict, set_forensics


@pytest.fixture
def forensics_env(obs_env):
    previous = set_forensics(True)
    try:
        yield obs_env
    finally:
        set_forensics(previous)


def _write_trace(records, path):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return str(path)


WIDTH = 512


@st.composite
def _scenario(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rate = draw(st.sampled_from([1e-3, 5e-3, 2e-2]))
    row = draw(st.integers(min_value=0, max_value=15))
    stress = draw(st.floats(min_value=0.0, max_value=60.0,
                            allow_nan=False))
    interval = draw(st.sampled_from([64.0, 328.0, 1024.0]))
    content_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return seed, rate, row, stress, interval, content_seed


class TestCounterfactualProperty:
    """The replay scenarios ARE the direct predicates, factor by factor."""

    @settings(max_examples=40, deadline=None)
    @given(_scenario())
    def test_agrees_with_failing_mask_and_rows_fail(self, scenario):
        seed, rate, row, stress, interval, content_seed = scenario
        fault_map = FaultMap(
            16, WIDTH, FaultModelConfig(vulnerable_cell_rate=rate),
            seed=seed,
        )
        content = (
            np.random.default_rng(content_seed).random(WIDTH) < 0.5
        ).astype(np.uint8)
        alt = (1 - content).astype(content.dtype)

        scenarios = why.counterfactuals(
            fault_map, row, content, interval, stress,
            nominal_interval_ms=64.0,
        )

        def direct(bits, ms, s):
            return bool(
                fault_map.failing_mask(row, bits, ms, disturb_stress=s).any()
            )

        assert scenarios["factual"] == direct(content, interval, stress)
        assert scenarios["no_disturb"] == direct(content, interval, 0.0)
        assert scenarios["nominal_refresh"] == direct(content, 64.0, stress)
        assert scenarios["alt_content"] == direct(alt, interval, stress)

        # The batch predicate the experiments use must agree too.
        batch = fault_map.rows_fail(
            np.asarray([row]), content, interval,
            disturb_stress=np.asarray([stress]),
        )
        assert scenarios["factual"] == bool(batch[0])

        # And the verdict derived from these scenarios is a function of
        # them alone — recomputing from the direct evaluations matches.
        for flipped in (False, True):
            assert classify_verdict(
                scenarios["factual"], scenarios["no_disturb"],
                scenarios["alt_content"], flipped=flipped,
            ) == classify_verdict(
                direct(content, interval, stress),
                direct(content, interval, 0.0),
                direct(alt, interval, stress),
                flipped=flipped,
            )

    def test_bool_content_inverts(self):
        fault_map = FaultMap(
            4, 64, FaultModelConfig(vulnerable_cell_rate=5e-2), seed=1
        )
        content = np.zeros(64, dtype=bool)
        scenarios = why.counterfactuals(fault_map, 0, content, 328.0, 0.0)
        direct_alt = bool(
            fault_map.failing_mask(0, ~content, 328.0).any()
        )
        assert scenarios["alt_content"] == direct_alt


class TestWhyCliPrilChain:
    """Acceptance scenario (a): a PRIL-granted page that later fails."""

    @pytest.fixture
    def failing_run(self, forensics_env, trace_factory, tmp_path):
        from repro.core.memcon import MemconConfig, simulate_refresh_reduction

        _registry, sink = forensics_env
        # Many single-write pages, half of them failing: some page gets
        # PRIL-granted, tested, and fails its retention test.
        trace = trace_factory(
            {p: [100.0 + p] for p in range(24)},
            duration_ms=10_000.0, total_pages=24,
        )
        simulate_refresh_reduction(
            trace, MemconConfig(quantum_ms=1000.0, test_duration_ms=64.0),
            failing_page_fraction=0.5, seed=7,
        )
        path = _write_trace(sink.records, tmp_path / "ledger.jsonl")
        granted = {r["page"] for r in sink.records
                   if r["kind"] == "pril_grant"}
        failed = {r["page"] for r in sink.records
                  if r["kind"] == "test_failed"}
        target = sorted(granted & failed)
        assert target, "fixture must produce a granted-then-failed page"
        return path, target[0]

    def test_chain_shows_grant_then_failure(self, failing_run, capsys):
        path, page = failing_run
        assert why.main(["--row", str(page), "--trace", path]) == 0
        out = capsys.readouterr().out
        assert f"causal chain for row {page}" in out
        grant_pos = out.index("PRIL granted LO-REF")
        fail_pos = out.index("MEMCON test failed")
        assert grant_pos < fail_pos

    def test_unknown_row_exits_nonzero(self, failing_run, capsys):
        path, _page = failing_run
        assert why.main(["--row", "999999", "--trace", path]) == 1
        assert "no ledger records" in capsys.readouterr().err


class TestWhyCliHammerReplay:
    """Acceptance scenario (b): a hammer01 row flagged only by the
    composed disturbance predicate, replayed offline."""

    @pytest.fixture(scope="class")
    def hammer_ledger(self, tmp_path_factory):
        from repro.experiments import hammer01

        sink = obs.ListTraceSink()
        previous_sink = obs.set_sink(sink)
        previous_forensics = set_forensics(True)
        try:
            unit = hammer01.units(quick=True, seed=1)[0]
            hammer01.run_unit(unit, quick=True, seed=1)
        finally:
            set_forensics(previous_forensics)
            obs.set_sink(previous_sink)
        path = _write_trace(
            sink.records, tmp_path_factory.mktemp("ledger") / "h.jsonl"
        )
        return path, sink.records

    def _row_with_verdict(self, records, verdict):
        for record in records:
            if record["kind"] == "forensic_row" and \
                    record["verdict"] == verdict:
                return record
        pytest.skip(f"no {verdict!r} row in this quick unit")

    def test_composed_row_replay_agrees(self, hammer_ledger, capsys):
        path, records = hammer_ledger
        record = self._row_with_verdict(records, "composed")
        # A composed row: fails with content + dose, but neither the
        # content-only nor the content-agnostic predicate flags it.
        assert record["composed"] and not record["content_only"]
        assert why.main(["--row", str(record["row"]), "--trace", path]) == 0
        out = capsys.readouterr().out
        assert "attributed: composed" in out
        assert "counterfactual replay" in out
        assert "verdict: composed (ledger agrees)" in out

    def test_all_attributions_replay_consistently(self, hammer_ledger):
        _path, records = hammer_ledger
        attributions = [
            r for r in records if r["kind"] == "forensic_row"
        ]
        assert attributions
        seen = set()
        for record in attributions:
            if record["verdict"] in seen:
                continue  # one replay per verdict keeps this fast
            seen.add(record["verdict"])
            replay = why.replay_row(record)
            assert replay["agrees"], (
                record["row"], record["verdict"], replay
            )

    def test_no_replay_flag_prints_chain_only(self, hammer_ledger, capsys):
        path, records = hammer_ledger
        record = self._row_with_verdict(records, "composed")
        assert why.main(
            ["--row", str(record["row"]), "--trace", path, "--no-replay"]
        ) == 0
        out = capsys.readouterr().out
        assert "causal chain" in out
        assert "counterfactual replay" not in out


class TestReplayDegradation:
    def test_missing_coordinates_raise_key_error(self):
        with pytest.raises(KeyError):
            why.replay_row({"kind": "forensic_row", "row": 3,
                            "verdict": "composed"})

    def test_resolve_sources_requires_input(self):
        with pytest.raises(SystemExit):
            why._resolve_sources(None, None)

    def test_resolve_sources_prefers_manifest_ledger(self, tmp_path):
        from repro.obs.manifest import MANIFEST_SCHEMA_VERSION

        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "schema": MANIFEST_SCHEMA_VERSION,
            "experiments": ["hammer01"],
            "forensics": {"ledger_path": "l.jsonl"},
        }))
        assert why._resolve_sources(str(manifest), None) == ["l.jsonl"]
