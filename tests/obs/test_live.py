"""LiveReporter: throttled status lines over the shared aggregator."""

import io

import pytest

from repro import obs
from repro.obs.analytics import AggregatingSink
from repro.obs.live import LiveReporter


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _rec(kind, **fields):
    record = {"v": obs.SCHEMA_VERSION, "kind": kind}
    record.update(fields)
    return record


def _reporter(interval_s=1.0):
    clock = FakeClock()
    stream = io.StringIO()
    aggregator = AggregatingSink()
    live = LiveReporter(aggregator, stream=stream,
                        interval_s=interval_s, clock=clock)
    return live, aggregator, stream, clock


class TestLiveReporter:
    __test__ = True

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            LiveReporter(AggregatingSink(), interval_s=-1.0)

    def test_throttles_to_interval(self):
        live, aggregator, stream, clock = _reporter(interval_s=1.0)
        for _ in range(50):
            record = _rec("test_started", t_ms=0.0, page=1)
            aggregator.emit(record)
            live.emit(record)
        assert live.reports_written == 0  # clock never advanced
        clock.advance(1.5)
        record = _rec("test_passed", t_ms=64.0, page=1)
        aggregator.emit(record)
        live.emit(record)
        assert live.reports_written == 1
        assert stream.getvalue().count("[live]") == 1

    def test_status_line_reflects_aggregator_state(self):
        live, aggregator, stream, clock = _reporter()
        for record in (
            _rec("test_started", t_ms=0.0, page=7),
            _rec("ref_transition", t_ms=10.0, page=3,
                 **{"from": "hi_ref", "to": "lo_ref"}),
        ):
            aggregator.emit(record)
            live.emit(record)
        clock.advance(2.0)
        record = _rec("ref_transition", t_ms=20.0, page=4,
                      **{"from": "hi_ref", "to": "lo_ref"})
        aggregator.emit(record)
        live.emit(record)
        line = stream.getvalue()
        assert "3 events" in line
        assert "lo-ref rows 2" in line
        assert "tests outstanding 1" in line

    def test_experiment_progress_and_eta(self):
        live, aggregator, stream, clock = _reporter()
        for record in (
            _rec("run_started", experiments=["fig06", "fig09", "fig15"]),
            _rec("experiment_finished", name="fig06", wall_s=2.0),
        ):
            aggregator.emit(record)
            live.emit(record)
        clock.advance(4.0)
        record = _rec("experiment_finished", name="fig09", wall_s=2.0)
        aggregator.emit(record)
        live.emit(record)
        line = stream.getvalue()
        assert "experiments 2/3" in line
        # 2 done in 4s elapsed -> 1 remaining at ~2s/each.
        assert "eta 2s" in line

    def test_no_eta_before_first_experiment_finishes(self):
        """done == 0 guard: the eta extrapolation divides by the number
        of finished experiments, so the first status line must carry the
        progress counter but no eta (and must not crash)."""
        live, aggregator, stream, clock = _reporter(interval_s=0.0)
        clock.advance(1.0)
        record = _rec("run_started", experiments=["fig06", "fig09"])
        aggregator.emit(record)
        live.emit(record)
        line = stream.getvalue()
        assert "experiments 0/2" in line
        assert "eta" not in line

    def test_no_eta_when_all_experiments_done(self):
        live, aggregator, stream, clock = _reporter(interval_s=0.0)
        for record in (
            _rec("run_started", experiments=["fig06"]),
            _rec("experiment_finished", name="fig06", wall_s=1.0),
        ):
            aggregator.emit(record)
            live.emit(record)
        clock.advance(2.0)
        live.close()
        final = stream.getvalue().splitlines()[-1]
        assert "experiments 1/1" in final
        assert "eta" not in final

    def test_close_writes_final_line_even_when_throttled(self):
        live, aggregator, stream, clock = _reporter(interval_s=60.0)
        record = _rec("test_started", t_ms=0.0, page=0)
        aggregator.emit(record)
        live.emit(record)
        assert stream.getvalue() == ""
        live.close()
        assert stream.getvalue().count("[live]") == 1
        assert "1 events" in stream.getvalue()

    def test_defaults_to_stderr(self, capsys):
        clock = FakeClock()
        live = LiveReporter(AggregatingSink(), interval_s=0.0, clock=clock)
        clock.advance(1.0)
        live.emit(_rec("run_started", experiments=["fig06"]))
        assert "[live]" in capsys.readouterr().err


class TestZeroExperiments:
    __test__ = True

    def test_final_line_shows_zero_of_zero(self):
        """A run that matched no experiments still closes with an
        explicit "experiments 0/0" so the operator sees the run was
        empty rather than silent."""
        live, aggregator, stream, clock = _reporter(interval_s=0.0)
        record = _rec("run_started", experiments=[])
        aggregator.emit(record)
        live.emit(record)
        clock.advance(1.0)
        live.close()
        final = stream.getvalue().splitlines()[-1]
        assert "experiments 0/0" in final
        assert "eta" not in final

    def test_missing_experiment_list_stays_unknown(self):
        live, aggregator, stream, clock = _reporter(interval_s=0.0)
        record = _rec("run_started")
        aggregator.emit(record)
        live.emit(record)
        clock.advance(1.0)
        live.close()
        assert "experiments" not in stream.getvalue()


class TestTick:
    __test__ = True

    def test_tick_repaints_without_a_record(self):
        live, aggregator, stream, clock = _reporter(interval_s=1.0)
        live.tick()
        assert live.reports_written == 0  # throttled
        clock.advance(1.5)
        live.tick()
        assert live.reports_written == 1
        assert "[live]" in stream.getvalue()


class TestWidthHandling:
    __test__ = True

    def test_non_tty_stream_is_never_clipped(self):
        """Pipes, CI redirects and test buffers get full lines; only a
        real terminal is clipped to its width."""
        live, aggregator, stream, clock = _reporter(interval_s=0.0)
        clock.advance(1.0)
        record = _rec(
            "run_started",
            experiments=[f"fig{i:02d}" for i in range(40)],
        )
        aggregator.emit(record)
        live.emit(record)
        line = stream.getvalue().splitlines()[0]
        assert "experiments 0/40" in line  # nothing truncated

    def test_tty_clips_to_terminal_width(self):
        class FakeTty(io.StringIO):
            def isatty(self):
                return True

            def fileno(self):
                raise ValueError("no real fd")  # -> FALLBACK_COLUMNS

        from repro.obs.live import FALLBACK_COLUMNS

        clock = FakeClock()
        stream = FakeTty()
        aggregator = AggregatingSink()
        live = LiveReporter(aggregator, stream=stream, interval_s=0.0,
                            clock=clock)
        clock.advance(1.0)
        record = _rec(
            "run_started",
            experiments=[f"fig{i:02d}" for i in range(40)],
        )
        aggregator.emit(record)
        live.emit(record)
        for line in stream.getvalue().splitlines():
            assert len(line) <= FALLBACK_COLUMNS


class TestBusRows:
    __test__ = True

    def test_repaint_appends_worker_rows(self):
        from repro.obs.bus import TelemetryBus

        clock = FakeClock()
        stream = io.StringIO()
        aggregator = AggregatingSink()
        bus = TelemetryBus(clock=clock)
        try:
            bus.table.observe({
                "kind": "heartbeat", "worker": "worker-g1-1", "pid": 1,
                "phase": "start", "experiment": "fig04", "unit": "scan-0",
                "seq": 0, "units_done": 0, "rss_bytes": 64 << 20,
                "t": 1000.0,
            })
            live = LiveReporter(aggregator, stream=stream, interval_s=0.0,
                                clock=clock, bus=bus)
            clock.advance(1.0)
            live.tick()
            lines = stream.getvalue().splitlines()
            assert lines[0].startswith("[live]")
            assert "worker-g1-1: fig04/scan-0" in lines[1]
        finally:
            bus.close()
