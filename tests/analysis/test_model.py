"""Tests for the closed-form Pareto interval model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.intervals import ril_exceeds_probability
from repro.analysis.model import ParetoIntervalModel, dhr_increase_with_cil
from repro.traces.events import WriteTrace


class TestSurvival:
    def test_below_scale_is_certain(self):
        model = ParetoIntervalModel(alpha=0.7, xm_ms=2.0)
        assert model.survival(1.0) == 1.0

    def test_power_law_form(self):
        model = ParetoIntervalModel(alpha=0.5, xm_ms=1.0)
        assert model.survival(4.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        model = ParetoIntervalModel(alpha=0.7)
        xs = [1.0, 2.0, 10.0, 100.0]
        values = [model.survival(x) for x in xs]
        assert values == sorted(values, reverse=True)


class TestConditionalRil:
    def test_closed_form(self):
        model = ParetoIntervalModel(alpha=1.0, xm_ms=1.0)
        # P(RIL > r | CIL = c) = c / (c + r) for alpha = 1.
        assert model.conditional_ril_survival(512.0, 512.0) == pytest.approx(0.5)

    def test_increases_with_cil(self):
        model = ParetoIntervalModel(alpha=0.7)
        values = [
            model.conditional_ril_survival(c, 1024.0)
            for c in (64.0, 512.0, 4096.0, 32768.0)
        ]
        assert values == sorted(values)

    def test_approaches_one_for_huge_cil(self):
        model = ParetoIntervalModel(alpha=0.7)
        assert model.conditional_ril_survival(1e9, 1024.0) > 0.999

    def test_matches_empirical_pareto_trace(self, trace_factory=None):
        """The analytic conditional must match a sampled Pareto trace."""
        alpha, xm = 0.7, 1.0
        rng = np.random.default_rng(3)
        gaps = xm * rng.random(400_000) ** (-1.0 / alpha)
        times = np.cumsum(gaps)
        duration = float(times[-1]) + 1.0
        trace = WriteTrace(duration_ms=duration,
                           writes={0: times[:-1]}, total_pages=1)
        model = ParetoIntervalModel(alpha=alpha, xm_ms=xm)
        for cil in (8.0, 64.0, 512.0):
            empirical = ril_exceeds_probability(trace, cil, 1024.0)
            analytic = model.conditional_ril_survival(cil, 1024.0)
            assert empirical == pytest.approx(analytic, abs=0.03)

    @given(st.floats(0.3, 2.0), st.floats(1.0, 1e5), st.floats(1.0, 1e5))
    @settings(max_examples=50, deadline=None)
    def test_dhr_property_holds_everywhere(self, alpha, cil, ril):
        model = ParetoIntervalModel(alpha=alpha)
        assert dhr_increase_with_cil(model, ril, cil, cil * 2.0) >= 0.0


class TestSizingHelpers:
    def test_expected_remaining_diverges_for_heavy_tail(self):
        assert ParetoIntervalModel(alpha=0.7).expected_remaining_ms(
            100.0
        ) == math.inf

    def test_expected_remaining_finite_above_one(self):
        model = ParetoIntervalModel(alpha=2.0)
        assert model.expected_remaining_ms(100.0) == pytest.approx(100.0)

    def test_cil_for_confidence_inverts_conditional(self):
        model = ParetoIntervalModel(alpha=0.7)
        cil = model.cil_for_target_confidence(1024.0, 0.7)
        assert model.conditional_ril_survival(cil, 1024.0) == pytest.approx(
            0.7, abs=1e-9
        )

    def test_higher_confidence_needs_longer_wait(self):
        model = ParetoIntervalModel(alpha=0.7)
        assert model.cil_for_target_confidence(
            1024.0, 0.9
        ) > model.cil_for_target_confidence(1024.0, 0.5)

    def test_paper_regime_sizing(self):
        """At the fitted alpha ~0.5, a 512-2048 ms quantum delivers the
        paper's 50-80% confidence band for RIL > 1024 ms."""
        model = ParetoIntervalModel(alpha=0.5)
        p_512 = model.conditional_ril_survival(512.0, 1024.0)
        p_2048 = model.conditional_ril_survival(2048.0, 1024.0)
        assert 0.4 < p_512 < 0.8
        assert p_2048 > p_512

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoIntervalModel(alpha=0.0)
        model = ParetoIntervalModel(alpha=1.0)
        with pytest.raises(ValueError):
            model.cil_for_target_confidence(1024.0, 1.5)
        with pytest.raises(ValueError):
            model.hazard(0.5)
