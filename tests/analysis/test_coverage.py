"""Tests for predictor accuracy/coverage scoring."""

import numpy as np
import pytest

from repro.analysis.coverage import (
    accuracy_coverage_tradeoff,
    evaluate_predictor,
)


class TestEvaluatePredictor:
    def test_confusion_counts(self, trace_factory):
        # Intervals with trailing: writes at 0, 500, 3000 in a 10 s trace:
        # 500 (short, < cil), 2500 (reaches cil, remaining 2000 > 1024 TP),
        # trailing 7000 (TP).
        trace = trace_factory({0: [0.0, 500.0, 3000.0]})
        quality = evaluate_predictor(trace, cil_ms=512.0)
        assert quality.true_positives == 2
        assert quality.false_positives == 0
        assert quality.short_skipped == 1
        assert quality.missed_long == 0
        assert quality.accuracy == 1.0

    def test_false_positive(self, trace_factory):
        # Interval 600: reaches CIL 512 but remaining 88 < 1024 -> FP.
        trace = trace_factory({0: [0.0, 600.0, 9999.0]})
        quality = evaluate_predictor(trace, cil_ms=512.0)
        assert quality.false_positives >= 1
        assert quality.accuracy < 1.0

    def test_missed_long(self, trace_factory):
        # Interval 2000 is long but below a huge CIL -> missed.
        trace = trace_factory({0: [0.0, 2000.0, 9999.0]},
                              duration_ms=10_000.0)
        quality = evaluate_predictor(trace, cil_ms=5000.0)
        assert quality.missed_long >= 1

    def test_time_coverage_bounds(self, trace_factory):
        rng = np.random.default_rng(2)
        times = np.sort(rng.uniform(0, 50_000, 40))
        trace = trace_factory({0: times}, duration_ms=60_000.0)
        quality = evaluate_predictor(trace, cil_ms=512.0)
        assert 0.0 <= quality.time_coverage <= 1.0

    def test_accuracy_increases_with_cil(self, trace_factory):
        rng = np.random.default_rng(3)
        # Heavy-tail synthetic page: many short, some huge intervals.
        gaps = np.concatenate([
            rng.exponential(50.0, 200),
            rng.uniform(2000.0, 20_000.0, 20),
        ])
        rng.shuffle(gaps)
        times = np.cumsum(gaps)
        times = times[times < 200_000.0]
        trace = trace_factory({0: times}, duration_ms=200_000.0)
        sweep = accuracy_coverage_tradeoff(
            trace, np.array([16.0, 256.0, 2048.0])
        )
        accuracies = [q.accuracy for q in sweep]
        assert accuracies[0] <= accuracies[-1] + 1e-9

    def test_coverage_decreases_with_cil(self, trace_factory):
        rng = np.random.default_rng(4)
        times = np.sort(rng.uniform(0, 50_000, 60))
        trace = trace_factory({0: times}, duration_ms=60_000.0)
        sweep = accuracy_coverage_tradeoff(
            trace, np.array([16.0, 512.0, 8192.0])
        )
        coverages = [q.time_coverage for q in sweep]
        assert coverages[0] >= coverages[-1] - 1e-9

    def test_empty_trace(self, trace_factory):
        quality = evaluate_predictor(trace_factory({}), cil_ms=512.0)
        assert quality.n_predictions == 0
        assert quality.accuracy == 0.0

    def test_negative_cil_raises(self, trace_factory):
        with pytest.raises(ValueError):
            evaluate_predictor(trace_factory({0: [1.0]}), cil_ms=-1.0)


class TestContentFailureCoverage:
    @pytest.fixture
    def dense_cells(self):
        from repro.dram.cell_array import CellArray
        from repro.dram.faults import FaultMap, FaultModelConfig
        from repro.dram.geometry import DramGeometry

        geometry = DramGeometry(
            channels=1, ranks=1, banks=2, rows_per_bank=32,
            row_size_bytes=512, block_size_bytes=64,
        )
        cells = CellArray(geometry, seed=21)
        cells.fault_map = FaultMap(
            total_rows=geometry.total_rows,
            bits_per_row=cells.vendor_mapping.physical_columns,
            config=FaultModelConfig(vulnerable_cell_rate=5e-3),
            seed=21,
        )
        return cells

    def test_content_bounded_by_worst_case(self, dense_cells):
        from repro.analysis.coverage import content_failure_coverage

        rng = np.random.default_rng(1)
        for row in range(dense_cells.geometry.total_rows):
            dense_cells.write_row_bits(
                row, rng.integers(0, 2, 4096).astype(np.uint8)
            )
        summary = content_failure_coverage(dense_cells, 1000.0)
        assert summary.rows_evaluated == dense_cells.geometry.total_rows
        assert summary.failing_with_content <= summary.failing_worst_case
        assert 0.0 <= summary.content_fraction <= summary.worst_case_fraction
        if summary.failing_with_content:
            assert summary.worst_case_ratio >= 1.0

    def test_row_subset(self, dense_cells):
        from repro.analysis.coverage import content_failure_coverage

        summary = content_failure_coverage(dense_cells, 1000.0, rows=range(8))
        assert summary.rows_evaluated == 8

    def test_empty_rows(self, dense_cells):
        from repro.analysis.coverage import content_failure_coverage

        summary = content_failure_coverage(dense_cells, 1000.0, rows=[])
        assert summary.rows_evaluated == 0
        assert summary.content_fraction == 0.0
        assert summary.worst_case_fraction == 0.0
