"""Tests for write-interval statistics (Figures 7, 9, 11, 12 machinery)."""

import numpy as np
import pytest

from repro.analysis.intervals import (
    CIL_GRID_MS,
    LONG_INTERVAL_MS,
    coverage_curve,
    fraction_of_writes_below,
    interval_distribution,
    interval_time_coverage,
    ril_exceeds_probability,
    ril_probability_curve,
    time_in_long_intervals,
)


class TestDistribution:
    def test_counts_sum_to_intervals(self, trace_factory):
        trace = trace_factory({0: [0.0, 0.5, 10.0, 600.0]})
        dist = interval_distribution(trace)
        assert dist.counts.sum() == dist.n_intervals == 3

    def test_bucket_placement(self, trace_factory):
        trace = trace_factory({0: [0.0, 0.5, 10.0, 600.0]})
        dist = interval_distribution(trace)
        # Intervals: 0.5 (bucket <1), 9.5 (8-64), 590 (512-4096).
        assert dist.counts[0] == 1
        assert dist.counts[2] == 1
        assert dist.counts[4] == 1

    def test_percentages(self, trace_factory):
        trace = trace_factory({0: [0.0, 0.5, 10.0, 600.0]})
        dist = interval_distribution(trace)
        assert dist.percentages.sum() == pytest.approx(100.0)

    def test_fraction_below(self, trace_factory):
        trace = trace_factory({0: [0.0, 0.5, 10.0]})
        assert fraction_of_writes_below(trace, 1.0) == pytest.approx(0.5)

    def test_empty_trace(self, trace_factory):
        assert fraction_of_writes_below(trace_factory({}), 1.0) == 0.0


class TestTimeInLongIntervals:
    def test_manual_computation(self, trace_factory):
        # Intervals: 100, 2000; trailing: 10000 - 2100 = 7900.
        trace = trace_factory({0: [0.0, 100.0, 2100.0]})
        expected = (2000.0 + 7900.0) / (100.0 + 2000.0 + 7900.0)
        assert time_in_long_intervals(trace) == pytest.approx(expected)

    def test_excluding_trailing(self, trace_factory):
        trace = trace_factory({0: [0.0, 100.0, 2100.0]})
        assert time_in_long_intervals(
            trace, include_trailing=False
        ) == pytest.approx(2000.0 / 2100.0)

    def test_all_short(self, trace_factory):
        trace = trace_factory({0: [0.0, 1.0, 2.0, 9999.5]},
                              duration_ms=10_000.0)
        assert time_in_long_intervals(trace, include_trailing=False) == \
            pytest.approx(9997.5 / 9999.5)

    def test_empty(self, trace_factory):
        assert time_in_long_intervals(trace_factory({})) == 0.0


class TestRilProbability:
    def test_manual_conditional(self, trace_factory):
        # Intervals (with trailing): 2000, 500, 7500  (writes at 0,2000,2500)
        trace = trace_factory({0: [0.0, 2000.0, 2500.0]})
        # CIL=100: all three reach it; remaining = 1900, 400, 7400;
        # two exceed 1024.
        assert ril_exceeds_probability(trace, 100.0) == pytest.approx(2 / 3)

    def test_probability_increases_with_cil_for_pareto_gaps(
        self, trace_factory
    ):
        # The DHR property holds for heavy-tailed gaps: the conditional
        # long-interval probability grows with elapsed idle time.
        rng = np.random.default_rng(0)
        gaps = 2.0 * rng.random(3000) ** (-1.0 / 0.7)
        times = np.cumsum(gaps)
        times = times[times < 500_000.0]
        trace = trace_factory({0: times}, duration_ms=500_000.0)
        grid = np.array([1.0, 64.0, 512.0])
        curve = ril_probability_curve(trace, grid)
        assert curve[0] < curve[1] < curve[2]

    def test_no_intervals_reaching_cil(self, trace_factory):
        trace = trace_factory({0: [0.0, 1.0]}, duration_ms=10.0)
        assert ril_exceeds_probability(trace, 100.0) == 0.0

    def test_default_grid_shape(self, trace_factory):
        trace = trace_factory({0: [0.0, 5000.0]})
        assert len(ril_probability_curve(trace)) == len(CIL_GRID_MS)


class TestCoverage:
    def test_manual_coverage(self, trace_factory):
        # Intervals with trailing: 2000 and 8000.
        trace = trace_factory({0: [0.0, 2000.0]})
        expected = ((2000 - 500) + (8000 - 500)) / 10_000
        assert interval_time_coverage(trace, 500.0) == pytest.approx(expected)

    def test_coverage_one_at_zero_cil(self, trace_factory):
        trace = trace_factory({0: [0.0, 2000.0]})
        assert interval_time_coverage(trace, 0.0) == pytest.approx(1.0)

    def test_coverage_monotone_decreasing(self, trace_factory):
        rng = np.random.default_rng(1)
        times = np.sort(rng.uniform(0, 9000, 30))
        trace = trace_factory({0: times})
        curve = coverage_curve(trace)
        assert np.all(np.diff(curve) <= 1e-12)

    def test_cil_larger_than_all_intervals(self, trace_factory):
        trace = trace_factory({0: [0.0, 10.0]}, duration_ms=100.0)
        assert interval_time_coverage(trace, 1000.0) == 0.0

    def test_long_interval_constant(self):
        assert LONG_INTERVAL_MS == 1024.0
