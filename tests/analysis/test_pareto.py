"""Tests for Pareto fitting and hazard-rate analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.pareto import (
    ParetoFit,
    empirical_ccdf,
    fit_pareto,
    hazard_rate,
    is_decreasing_hazard,
)


def pareto_sample(n: int, alpha: float, xm: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return xm * rng.random(n) ** (-1.0 / alpha)


class TestEmpiricalCcdf:
    def test_survival_at_minimum_is_below_one(self):
        x, p = empirical_ccdf(np.array([1.0, 2.0, 3.0]))
        # P(L > 1) counts strictly greater samples.
        assert p[0] == pytest.approx(2 / 3)

    def test_survival_at_maximum_is_zero(self):
        x, p = empirical_ccdf(np.array([1.0, 2.0, 3.0]))
        assert p[-1] == 0.0

    def test_monotone_decreasing(self):
        samples = pareto_sample(5000, 0.8, 1.0, 0)
        x, p = empirical_ccdf(samples, np.logspace(0, 3, 30))
        assert np.all(np.diff(p) <= 0)

    def test_custom_grid(self):
        samples = np.array([1.0, 5.0, 10.0])
        x, p = empirical_ccdf(samples, np.array([2.0, 7.0]))
        assert list(p) == [pytest.approx(2 / 3), pytest.approx(1 / 3)]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_ccdf(np.array([]))


class TestFitPareto:
    def test_recovers_known_alpha(self):
        samples = pareto_sample(200_000, 0.75, 1.0, 1)
        fit = fit_pareto(samples, x_min=1.0, x_max=1e4)
        assert fit.alpha == pytest.approx(0.75, abs=0.05)

    def test_r_squared_near_one_for_true_pareto(self):
        samples = pareto_sample(200_000, 0.75, 1.0, 2)
        fit = fit_pareto(samples, x_min=1.0, x_max=1e4)
        assert fit.r_squared > 0.99

    def test_exponential_fits_worse_than_pareto(self):
        rng = np.random.default_rng(3)
        exponential = rng.exponential(10.0, 100_000)
        pareto = pareto_sample(100_000, 0.75, 1.0, 3)
        fit_exp = fit_pareto(exponential, x_min=1.0, x_max=80.0)
        fit_par = fit_pareto(pareto, x_min=1.0, x_max=80.0)
        assert fit_par.r_squared > fit_exp.r_squared

    def test_model_ccdf_clipped_to_unit(self):
        fit = ParetoFit(alpha=0.5, k=10.0, r_squared=1.0, n_samples=10,
                        x_min=1.0)
        assert np.all(fit.ccdf(np.array([0.001, 1.0, 1e9])) <= 1.0)

    def test_model_ccdf_matches_formula(self):
        fit = ParetoFit(alpha=0.5, k=0.1, r_squared=1.0, n_samples=10,
                        x_min=1.0)
        assert fit.ccdf(np.array([4.0]))[0] == pytest.approx(0.05)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError, match="at least 10"):
            fit_pareto(np.array([1.0, 2.0]))

    def test_x_max_below_x_min_raises(self):
        with pytest.raises(ValueError, match="x_max"):
            fit_pareto(pareto_sample(100, 1.0, 1.0, 0), x_min=10.0, x_max=5.0)

    @given(
        st.floats(min_value=0.4, max_value=1.5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_alpha_recovery_property(self, alpha, seed):
        samples = pareto_sample(50_000, alpha, 1.0, seed)
        fit = fit_pareto(samples, x_min=1.0, x_max=1000.0)
        assert fit.alpha == pytest.approx(alpha, rel=0.15)
        assert fit.r_squared > 0.97


class TestHazardRate:
    def test_pareto_hazard_decreases(self):
        samples = pareto_sample(200_000, 0.8, 1.0, 5)
        grid = np.logspace(0, 3, 10)
        rates = hazard_rate(samples, grid)
        valid = rates[~np.isnan(rates)]
        assert np.all(np.diff(valid) < 0)

    def test_exponential_hazard_roughly_flat(self):
        rng = np.random.default_rng(6)
        samples = rng.exponential(10.0, 500_000)
        grid = np.linspace(1.0, 30.0, 8)
        rates = hazard_rate(samples, grid)
        assert rates.max() / rates.min() < 1.5

    def test_grid_too_small_raises(self):
        with pytest.raises(ValueError):
            hazard_rate(np.array([1.0, 2.0]), np.array([1.0]))


class TestDecreasingHazard:
    def test_pareto_is_dhr(self):
        samples = pareto_sample(100_000, 0.7, 1.0, 7)
        assert is_decreasing_hazard(samples)

    def test_increasing_hazard_rejected(self):
        rng = np.random.default_rng(8)
        # Rayleigh-like distribution has increasing hazard.
        samples = rng.rayleigh(50.0, 100_000)
        assert not is_decreasing_hazard(
            samples, grid=np.linspace(1.0, 150.0, 12), tolerance=0.1
        )
