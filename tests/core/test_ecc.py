"""Tests for ECC-based mitigation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ecc import (
    EccConfig,
    Mitigation,
    choose_mitigation,
    failures_per_word,
    row_is_correctable,
    summarise_mitigations,
)
from repro.dram.faults import VulnerableCell


def _cell(column: int) -> VulnerableCell:
    return VulnerableCell(row_index=0, physical_column=column,
                          threshold=0.5, true_cell=True)


class TestCorrectability:
    def test_no_failures_correctable(self):
        assert row_is_correctable([])

    def test_single_bit_per_word_correctable(self):
        # Bits 3 and 70 land in words 0 and 1.
        assert row_is_correctable([3, 70])

    def test_two_bits_same_word_uncorrectable(self):
        assert not row_is_correctable([3, 5])

    def test_word_boundary(self):
        # Bits 63 and 64 are in different SECDED words.
        assert row_is_correctable([63, 64])

    def test_failures_per_word_histogram(self):
        counts = failures_per_word([0, 1, 64, 129])
        assert counts == {0: 2, 1: 1, 2: 1}

    def test_negative_bit_raises(self):
        with pytest.raises(ValueError):
            failures_per_word([-1])

    @given(st.lists(st.integers(0, 1023), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_correctable_iff_max_one_per_word(self, bits):
        per_word = failures_per_word(bits)
        expected = not per_word or max(per_word.values()) <= 1
        assert row_is_correctable(bits) == expected


class TestChooseMitigation:
    def test_clean_row_stays_lo(self):
        assert choose_mitigation([]) is Mitigation.LO_REF

    def test_correctable_row_uses_ecc(self):
        assert choose_mitigation([_cell(3)]) is Mitigation.ECC_LO_REF

    def test_uncorrectable_row_goes_hi(self):
        assert choose_mitigation([_cell(3), _cell(4)]) is Mitigation.HI_REF

    def test_ecc_disabled_falls_back_to_hi(self):
        assert choose_mitigation(
            [_cell(3)], ecc_enabled=False
        ) is Mitigation.HI_REF

    def test_stronger_code_corrects_more(self):
        config = EccConfig(correctable_per_word=2)
        assert choose_mitigation([_cell(3), _cell(4)],
                                 config=config) is Mitigation.ECC_LO_REF


class TestSummary:
    def test_tally(self):
        summary = summarise_mitigations([
            Mitigation.LO_REF, Mitigation.LO_REF,
            Mitigation.ECC_LO_REF, Mitigation.HI_REF,
        ])
        assert summary.lo_ref_rows == 2
        assert summary.ecc_rows == 1
        assert summary.hi_ref_rows == 1
        assert summary.total == 4
        assert summary.hi_ref_fraction == 0.25

    def test_refresh_ops(self):
        summary = summarise_mitigations([
            Mitigation.LO_REF, Mitigation.ECC_LO_REF, Mitigation.HI_REF,
        ])
        # 1 + 1 + 4 refreshes per LO window.
        assert summary.refresh_ops_per_window() == 6.0

    def test_ecc_reduces_refresh_cost(self):
        with_ecc = summarise_mitigations([
            choose_mitigation([_cell(3)]) for _ in range(10)
        ])
        without_ecc = summarise_mitigations([
            choose_mitigation([_cell(3)], ecc_enabled=False)
            for _ in range(10)
        ])
        assert (with_ecc.refresh_ops_per_window()
                < without_ecc.refresh_ops_per_window())


class TestConfig:
    def test_storage_overhead(self):
        assert EccConfig().storage_overhead == pytest.approx(0.125)

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            EccConfig(word_bits=0)
        with pytest.raises(ValueError):
            EccConfig(correctable_per_word=-1)
