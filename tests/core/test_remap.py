"""Tests for row remapping and the combined mitigation cascade."""

import pytest

from repro.core.ecc import EccConfig
from repro.core.remap import MitigationPlan, RemapTable, plan_mitigations
from repro.dram.faults import VulnerableCell


def _cell(column: int) -> VulnerableCell:
    return VulnerableCell(row_index=0, physical_column=column,
                          threshold=0.5, true_cell=True)


class TestRemapTable:
    def test_remap_and_lookup(self):
        table = RemapTable(spare_rows=[100, 101])
        spare = table.remap(5)
        assert spare in (100, 101)
        assert table.lookup(5) == spare
        assert table.remapped_rows == 1
        assert table.available == 1

    def test_pool_exhaustion_returns_none(self):
        table = RemapTable(spare_rows=[100])
        assert table.remap(1) is not None
        assert table.remap(2) is None

    def test_release_recycles_spare(self):
        table = RemapTable(spare_rows=[100])
        table.remap(1)
        table.release(1)
        assert table.available == 1
        assert table.lookup(1) is None
        assert table.remap(2) == 100

    def test_double_remap_raises(self):
        table = RemapTable(spare_rows=[100, 101])
        table.remap(1)
        with pytest.raises(ValueError, match="already remapped"):
            table.remap(1)

    def test_release_unmapped_raises(self):
        with pytest.raises(ValueError, match="not remapped"):
            RemapTable(spare_rows=[100]).release(7)

    def test_duplicate_spares_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RemapTable(spare_rows=[100, 100])

    def test_storage_overhead(self):
        table = RemapTable(spare_rows=list(range(10)))
        assert table.storage_overhead_bits(18) == 10 * 36


class TestCascade:
    def test_clean_rows_lo_ref(self):
        plan = plan_mitigations({0: [], 1: []})
        assert plan.lo_ref_rows == 2
        assert plan.total == 2

    def test_correctable_rows_take_ecc(self):
        plan = plan_mitigations(
            {0: [_cell(3)]},
            ecc=EccConfig(),
        )
        assert plan.ecc_rows == 1
        assert plan.hi_ref_rows == 0

    def test_uncorrectable_rows_remapped_first(self):
        plan = plan_mitigations(
            {0: [_cell(3), _cell(4)]},
            remap_table=RemapTable(spare_rows=[99]),
            ecc=EccConfig(),
        )
        assert plan.remapped_rows == 1
        assert plan.hi_ref_rows == 0

    def test_exhausted_spares_fall_to_hi_ref(self):
        plan = plan_mitigations(
            {
                0: [_cell(3), _cell(4)],
                1: [_cell(3), _cell(4)],
            },
            remap_table=RemapTable(spare_rows=[99]),
            ecc=EccConfig(),
        )
        assert plan.remapped_rows == 1
        assert plan.hi_ref_rows == 1

    def test_no_ecc_no_remap_all_failures_hi(self):
        plan = plan_mitigations({0: [_cell(3)], 1: []})
        assert plan.hi_ref_rows == 1
        assert plan.lo_ref_rows == 1

    def test_refresh_ops_cheapest_first(self):
        spares = RemapTable(spare_rows=[99])
        full = plan_mitigations(
            {0: [], 1: [_cell(3)], 2: [_cell(3), _cell(4)]},
            remap_table=spares, ecc=EccConfig(),
        )
        bare = plan_mitigations(
            {0: [], 1: [_cell(3)], 2: [_cell(3), _cell(4)]},
        )
        assert full.refresh_ops_per_window() == 3.0   # all LO-like
        assert bare.refresh_ops_per_window() == 9.0   # 1 + 2 rows at 4x

    def test_plan_totals(self):
        plan = MitigationPlan(lo_ref_rows=5, ecc_rows=2,
                              remapped_rows=1, hi_ref_rows=2)
        assert plan.total == 10
        assert plan.refresh_ops_per_window() == 8 + 2 * 4
