"""Tests for silent-write detection and trace filtering."""

import numpy as np
import pytest

from repro.core.memcon import MemconConfig, simulate_refresh_reduction
from repro.core.silentwrites import SilentWriteFilter, filter_trace
from repro.traces.generator import generate_trace
from repro.traces.workloads import WORKLOADS


class TestFilterObject:
    def test_first_write_not_silent(self):
        f = SilentWriteFilter()
        assert not f.observe(0, b"hello")

    def test_repeat_content_is_silent(self):
        f = SilentWriteFilter()
        f.observe(0, b"hello")
        assert f.observe(0, b"hello")
        assert f.stats.silent_fraction == 0.5

    def test_changed_content_not_silent(self):
        f = SilentWriteFilter()
        f.observe(0, b"hello")
        assert not f.observe(0, b"world")

    def test_pages_independent(self):
        f = SilentWriteFilter()
        f.observe(0, b"hello")
        assert not f.observe(1, b"hello")

    def test_silent_then_changed_then_silent(self):
        f = SilentWriteFilter()
        f.observe(0, b"a")
        assert f.observe(0, b"a")
        assert not f.observe(0, b"b")
        assert f.observe(0, b"b")
        assert f.stats.writes_seen == 4
        assert f.stats.silent_writes == 2

    def test_negative_page_raises(self):
        with pytest.raises(ValueError):
            SilentWriteFilter().observe(-1, b"x")

    def test_empty_stats(self):
        assert SilentWriteFilter().stats.silent_fraction == 0.0


class TestTraceFiltering:
    def test_zero_probability_is_identity(self, trace_factory):
        trace = trace_factory({0: [1.0, 2.0, 3.0]})
        filtered, stats = filter_trace(trace, 0.0)
        assert np.array_equal(filtered.writes[0], trace.writes[0])
        assert stats.silent_writes == 0

    def test_first_write_always_kept(self, trace_factory):
        trace = trace_factory({0: [1.0, 2.0, 3.0]})
        filtered, stats = filter_trace(trace, 1.0)
        assert list(filtered.writes[0]) == [1.0]
        assert stats.silent_writes == 2

    def test_expected_drop_rate(self, trace_factory):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 9000, 2000))
        trace = trace_factory({0: times})
        _, stats = filter_trace(trace, 0.4, seed=1)
        assert stats.silent_fraction == pytest.approx(0.4, abs=0.05)

    def test_footprint_preserved(self, trace_factory):
        trace = trace_factory({0: [1.0], 1: [2.0]}, total_pages=16)
        filtered, _ = filter_trace(trace, 0.5, seed=2)
        assert filtered.total_pages == 16
        assert filtered.duration_ms == trace.duration_ms

    def test_invalid_probability_raises(self, trace_factory):
        with pytest.raises(ValueError):
            filter_trace(trace_factory({0: [1.0]}), 1.5)

    def test_silent_filtering_never_hurts_reduction(self):
        """Dropping silent writes can only lengthen apparent idle spans,
        so MEMCON's refresh reduction must not decrease."""
        trace = generate_trace(WORKLOADS["BlurMotion"], seed=6,
                               duration_ms=15_000.0)
        config = MemconConfig(quantum_ms=1024.0)
        plain = simulate_refresh_reduction(trace, config)
        filtered, stats = filter_trace(trace, 0.4, seed=3)
        improved = simulate_refresh_reduction(filtered, config)
        assert stats.silent_fraction > 0.3
        assert improved.refresh_reduction >= plain.refresh_reduction - 0.01
