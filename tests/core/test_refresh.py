"""Tests for the refresh ledger and baseline policies."""

import pytest

from repro.core.refresh import (
    FixedRefreshPolicy,
    RaidrPolicy,
    RefreshLedger,
    RefreshState,
    StateTimes,
)


class TestStateTimes:
    def test_accumulates_per_state(self):
        times = StateTimes()
        times.add(RefreshState.HI_REF, 10.0)
        times.add(RefreshState.LO_REF, 20.0)
        times.add(RefreshState.TESTING, 5.0)
        assert (times.hi_ms, times.lo_ms, times.testing_ms) == (10.0, 20.0, 5.0)
        assert times.total_ms == 35.0

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            StateTimes().add(RefreshState.HI_REF, -1.0)


class TestLedger:
    def test_untouched_rows_default_to_hi(self):
        ledger = RefreshLedger(total_rows=4)
        ledger.finalize(160.0)
        # 4 rows x 160 ms / 16 ms = 40 refreshes, same as the baseline.
        assert ledger.refresh_count() == 40.0
        assert ledger.refresh_reduction() == 0.0

    def test_all_lo_hits_upper_bound(self):
        ledger = RefreshLedger(total_rows=4)
        for row in range(4):
            ledger.set_state(row, RefreshState.LO_REF, 0.0)
        ledger.finalize(640.0)
        assert ledger.refresh_reduction() == pytest.approx(0.75)

    def test_mixed_states_accounting(self):
        ledger = RefreshLedger(total_rows=2)
        ledger.set_state(0, RefreshState.LO_REF, 64.0)  # HI 64ms then LO
        ledger.finalize(128.0)
        # Row 0: 64 ms HI (4 refreshes) + 64 ms LO (1) = 5.
        # Row 1: 128 ms HI = 8.
        assert ledger.refresh_count() == pytest.approx(13.0)

    def test_testing_time_has_no_refreshes(self):
        ledger = RefreshLedger(total_rows=1)
        ledger.set_state(0, RefreshState.TESTING, 0.0)
        ledger.set_state(0, RefreshState.HI_REF, 64.0)
        ledger.finalize(128.0)
        assert ledger.refresh_count() == pytest.approx(4.0)  # only HI span

    def test_row_times_query(self):
        ledger = RefreshLedger(total_rows=2)
        ledger.set_state(0, RefreshState.LO_REF, 100.0)
        ledger.finalize(300.0)
        times = ledger.row_times(0)
        assert times.hi_ms == 100.0
        assert times.lo_ms == 200.0
        untouched = ledger.row_times(1)
        assert untouched.hi_ms == 300.0

    def test_lo_ref_time_fraction(self):
        ledger = RefreshLedger(total_rows=2)
        ledger.set_state(0, RefreshState.LO_REF, 0.0)
        ledger.finalize(100.0)
        assert ledger.lo_ref_time_fraction() == pytest.approx(0.5)

    def test_baseline_refresh_count(self):
        ledger = RefreshLedger(total_rows=10)
        ledger.finalize(160.0)
        assert ledger.baseline_refresh_count() == 100.0

    def test_time_backwards_raises(self):
        ledger = RefreshLedger(total_rows=1)
        ledger.set_state(0, RefreshState.LO_REF, 50.0)
        with pytest.raises(ValueError, match="backwards"):
            ledger.set_state(0, RefreshState.HI_REF, 40.0)

    def test_double_finalize_raises(self):
        ledger = RefreshLedger(total_rows=1)
        ledger.finalize(10.0)
        with pytest.raises(RuntimeError):
            ledger.finalize(20.0)

    def test_query_before_finalize_raises(self):
        ledger = RefreshLedger(total_rows=1)
        with pytest.raises(RuntimeError):
            ledger.refresh_count()

    def test_set_state_after_finalize_raises(self):
        ledger = RefreshLedger(total_rows=1)
        ledger.finalize(10.0)
        with pytest.raises(RuntimeError):
            ledger.set_state(0, RefreshState.LO_REF, 20.0)

    def test_invalid_intervals_raise(self):
        with pytest.raises(ValueError, match="LO-REF"):
            RefreshLedger(total_rows=1, hi_ref_interval_ms=64.0,
                          lo_ref_interval_ms=16.0)

    def test_out_of_range_row_raises(self):
        ledger = RefreshLedger(total_rows=2)
        with pytest.raises(ValueError):
            ledger.set_state(2, RefreshState.LO_REF, 0.0)


class TestFixedPolicy:
    def test_refresh_count(self):
        policy = FixedRefreshPolicy(interval_ms=16.0)
        assert policy.refresh_count(total_rows=8, window_ms=160.0) == 80.0

    def test_32ms_halves_the_16ms_count(self):
        fast = FixedRefreshPolicy(16.0)
        slow = FixedRefreshPolicy(32.0)
        assert slow.refresh_count(4, 320.0) == fast.refresh_count(4, 320.0) / 2

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            FixedRefreshPolicy(0.0)


class TestRaidrPolicy:
    def test_interval_per_row(self):
        policy = RaidrPolicy(hi_ref_rows=frozenset({1, 3}))
        assert policy.interval_for(1) == 16.0
        assert policy.interval_for(2) == 64.0

    def test_refresh_count(self):
        policy = RaidrPolicy(hi_ref_rows=frozenset({0}))
        # 1 HI row (4 refreshes per 64 ms) + 3 LO rows (1 each) = 7.
        assert policy.refresh_count(total_rows=4, window_ms=64.0) == 7.0

    def test_paper_reduction_with_16_percent_hi(self):
        # 16% of rows at HI-REF: reduction = 0.84 * 0.75 = 63%.
        rows = 1000
        policy = RaidrPolicy(hi_ref_rows=frozenset(range(160)))
        assert policy.refresh_reduction(rows) == pytest.approx(0.63)

    def test_all_rows_hi_means_no_reduction(self):
        policy = RaidrPolicy(hi_ref_rows=frozenset(range(10)))
        assert policy.refresh_reduction(10) == 0.0

    def test_more_hi_rows_than_total_raises(self):
        policy = RaidrPolicy(hi_ref_rows=frozenset(range(10)))
        with pytest.raises(ValueError):
            policy.refresh_count(total_rows=5, window_ms=10.0)
