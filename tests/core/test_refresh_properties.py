"""Property-based tests for refresh-ledger accounting invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.refresh import RefreshLedger, RefreshState

STATES = [RefreshState.HI_REF, RefreshState.LO_REF, RefreshState.TESTING]

# A transition script: per row, a list of (time offset, state index).
transition_lists = st.lists(
    st.tuples(
        st.integers(0, 3),                    # row
        st.floats(0.0, 1000.0),               # time delta from previous
        st.integers(0, 2),                    # state index
    ),
    max_size=30,
)


class TestLedgerInvariants:
    @given(transition_lists)
    @settings(max_examples=80, deadline=None)
    def test_state_times_partition_the_window(self, script):
        """Every row's hi+lo+testing time must equal the window exactly."""
        ledger = RefreshLedger(total_rows=4)
        clock = {row: 0.0 for row in range(4)}
        now = 0.0
        for row, delta, state_idx in script:
            now += delta
            ledger.set_state(row, STATES[state_idx], now)
            clock[row] = now
        end = now + 1.0
        ledger.finalize(end)
        for row in range(4):
            times = ledger.row_times(row)
            assert times.total_ms == pytest.approx(end)

    @given(transition_lists)
    @settings(max_examples=80, deadline=None)
    def test_reduction_bounded_by_upper_bound(self, script):
        """Refresh reduction can never exceed 1 - hi/lo (75%)."""
        ledger = RefreshLedger(total_rows=4)
        now = 0.0
        for row, delta, state_idx in script:
            now += delta
            ledger.set_state(row, STATES[state_idx], now)
        ledger.finalize(now + 1.0)
        reduction = ledger.refresh_reduction()
        # TESTING time receives no refreshes at all, so the reduction can
        # exceed the pure LO-REF bound only through testing time.
        testing = sum(
            ledger.row_times(r).testing_ms for r in range(4)
        )
        if testing == 0:
            assert reduction <= 0.75 + 1e-12
        assert reduction <= 1.0

    @given(transition_lists)
    @settings(max_examples=60, deadline=None)
    def test_refresh_count_decomposes_per_state(self, script):
        """Total refreshes == hi_time/16 + lo_time/64, summed over rows."""
        ledger = RefreshLedger(total_rows=4)
        now = 0.0
        for row, delta, state_idx in script:
            now += delta
            ledger.set_state(row, STATES[state_idx], now)
        ledger.finalize(now + 1.0)
        expected = 0.0
        for row in range(4):
            times = ledger.row_times(row)
            expected += times.hi_ms / 16.0 + times.lo_ms / 64.0
        assert ledger.refresh_count() == pytest.approx(expected)

    @given(st.floats(1.0, 10_000.0))
    @settings(max_examples=30, deadline=None)
    def test_all_hi_equals_baseline(self, window):
        ledger = RefreshLedger(total_rows=8)
        ledger.finalize(window)
        assert ledger.refresh_count() == pytest.approx(
            ledger.baseline_refresh_count()
        )
