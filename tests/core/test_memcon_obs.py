"""End-to-end: the controller's trace/metrics reconcile with its report.

The observability layer is only trustworthy if the event stream and the
report agree exactly: every test the controller accounts for must appear
as a ``test_started`` event, and every started test must resolve to
exactly one of aborted / passed / failed. The same reconciliation holds
for refresh-state transitions and the registry counters.
"""

import numpy as np
import pytest

from repro.core import MemconConfig, MemconController
from repro.core.memcon import simulate_refresh_reduction


def _run(trace, obs_env, **kwargs):
    controller = MemconController(
        total_pages=trace.total_pages,
        config=MemconConfig(quantum_ms=1024.0),
        **kwargs,
    )
    return controller.run(trace), controller


@pytest.fixture
def busy_trace(trace_factory):
    # Page 0: one early write, predicted and tested, stays idle -> passes.
    # Page 1: write, predicted, then rewritten inside the test window -> abort.
    # Page 2: rewritten every quantum -> never predicted.
    # Pages 3..5: read-only -> tested once at start-up.
    return trace_factory(
        {
            0: [100.0],
            1: [100.0, 2048.0 + 30.0],
            2: list(np.arange(10) * 1024.0 + 50.0),
        },
        duration_ms=10_240.0,
        total_pages=6,
    )


class TestTraceReconciliation:
    def test_started_equals_tests_total(self, busy_trace, obs_env):
        _, sink = obs_env
        report, _ = _run(busy_trace, obs_env)
        kinds = sink.kinds()
        assert kinds.get("test_started", 0) == report.tests_total

    def test_started_equals_aborted_plus_passed_plus_failed(
        self, busy_trace, obs_env
    ):
        _, sink = obs_env
        report, _ = _run(busy_trace, obs_env)
        kinds = sink.kinds()
        assert kinds.get("test_started", 0) == (
            kinds.get("test_aborted", 0)
            + kinds.get("test_passed", 0)
            + kinds.get("test_failed", 0)
        )
        assert kinds.get("test_aborted", 0) == report.tests_aborted
        assert kinds.get("test_failed", 0) == report.tests_failed
        assert kinds.get("test_passed", 0) == (
            report.tests_total - report.tests_aborted - report.tests_failed
        )

    def test_abort_actually_happens_in_fixture(self, busy_trace, obs_env):
        _, sink = obs_env
        report, _ = _run(busy_trace, obs_env)
        assert report.tests_aborted >= 1

    def test_failing_pages_reconcile(self, busy_trace, obs_env):
        _, sink = obs_env
        report, _ = _run(busy_trace, obs_env)
        # Re-run with every page failing its content test.
        registry2, sink2 = obs_env
        sink2.records.clear()
        controller = MemconController(
            total_pages=busy_trace.total_pages,
            config=MemconConfig(quantum_ms=1024.0),
            fails=lambda page: True,
        )
        failing_report = controller.run(busy_trace)
        kinds = sink2.kinds()
        assert kinds["test_failed"] == failing_report.tests_failed
        assert failing_report.tests_failed == (
            failing_report.tests_total - failing_report.tests_aborted
        )
        assert "test_passed" not in kinds

    def test_transitions_reconcile_with_pass_counts(self, busy_trace, obs_env):
        _, sink = obs_env
        report, _ = _run(busy_trace, obs_env)
        transitions = [r for r in sink.records if r["kind"] == "ref_transition"]
        to_lo = [t for t in transitions if t["to"] == "lo_ref"]
        # Every passed test promotes exactly one row to LO-REF.
        passed = report.tests_total - report.tests_aborted - report.tests_failed
        assert len(to_lo) == passed
        # Transition records carry valid from/to states.
        states = {"hi_ref", "lo_ref", "testing"}
        assert all(t["from"] in states and t["to"] in states for t in transitions)
        assert all(t["from"] != t["to"] for t in transitions)

    def test_pril_quantum_events_cover_all_boundaries(
        self, busy_trace, obs_env
    ):
        _, sink = obs_env
        _, controller = _run(busy_trace, obs_env)
        quanta = [r for r in sink.records if r["kind"] == "pril_quantum"]
        assert len(quanta) == controller.pril.quantum_index
        assert sum(q["predicted"] for q in quanta) == (
            controller.pril.stats.predictions_made
        )


class TestCounterReconciliation:
    def test_registry_counters_match_report(self, busy_trace, obs_env):
        registry, _ = obs_env
        report, _ = _run(busy_trace, obs_env)
        counters = registry.snapshot()["counters"]
        assert counters["memcon.tests_started"] == report.tests_total
        assert counters["memcon.tests_aborted"] == report.tests_aborted
        assert counters["memcon.tests_failed"] == report.tests_failed
        assert counters["memcon.tests_passed"] == (
            report.tests_total - report.tests_aborted - report.tests_failed
        )
        assert counters["memcon.transitions_to_lo"] == (
            counters["memcon.tests_passed"]
        )
        assert counters["pril.writes_observed"] == (
            sum(len(t) for t in busy_trace.writes.values())
        )

    def test_fast_model_counts_tests(self, busy_trace, obs_env):
        registry, _ = obs_env
        report = simulate_refresh_reduction(
            busy_trace, MemconConfig(quantum_ms=1024.0)
        )
        counters = registry.snapshot()["counters"]
        assert counters["memcon.tests_started"] == report.tests_total
        assert counters["memcon.tests_aborted"] == report.tests_aborted

    def test_disabled_registry_records_nothing(self, busy_trace):
        from repro import obs

        registry = obs.MetricsRegistry(enabled=False)
        previous = obs.set_registry(registry)
        try:
            report, _ = _run(busy_trace, None)
            assert report.tests_total > 0
            counters = registry.snapshot()["counters"]
            assert all(value == 0 for value in counters.values())
        finally:
            obs.set_registry(previous)


class TestFastVsControllerAbortAccounting:
    def test_fast_model_reports_same_aborts(self, busy_trace, obs_env):
        slow, _ = _run(busy_trace, obs_env)
        fast = simulate_refresh_reduction(
            busy_trace, MemconConfig(quantum_ms=1024.0)
        )
        assert fast.tests_aborted == slow.tests_aborted
        assert fast.tests_total == slow.tests_total


class TestFastModelEventStream:
    """The accounting model replays its verdicts as a valid event stream."""

    def test_stream_is_schema_valid_and_time_ordered(self, busy_trace, obs_env):
        from repro import obs as obs_mod

        _, sink = obs_env
        simulate_refresh_reduction(busy_trace, MemconConfig(quantum_ms=1024.0))
        assert sink.records
        for record in sink.records:
            obs_mod.validate_record(record)
        stamps = [r["t_ms"] for r in sink.records if "t_ms" in r]
        assert stamps == sorted(stamps)

    def test_lifecycle_reconciles_with_report(self, busy_trace, obs_env):
        _, sink = obs_env
        report = simulate_refresh_reduction(
            busy_trace, MemconConfig(quantum_ms=1024.0)
        )
        kinds = sink.kinds()
        assert kinds["test_started"] == report.tests_total
        assert kinds["test_started"] == (
            kinds.get("test_aborted", 0)
            + kinds.get("test_passed", 0)
            + kinds.get("test_failed", 0)
        )
        assert kinds.get("test_aborted", 0) == report.tests_aborted

    def test_pril_events_predict_the_tests_started(self, busy_trace, obs_env):
        from repro import obs as obs_mod

        _, sink = obs_env
        simulate_refresh_reduction(busy_trace, MemconConfig(quantum_ms=1024.0))
        rollup = obs_mod.aggregate_trace(sink.records, window_ms=1024.0)
        for quantum in rollup["pril"]:
            assert quantum["started"] == quantum["predicted"]
            assert quantum["resolved"] + quantum["aborted"] == (
                quantum["started"]
            )

    def test_transitions_keep_population_consistent(self, busy_trace, obs_env):
        from repro import obs as obs_mod

        _, sink = obs_env
        simulate_refresh_reduction(busy_trace, MemconConfig(quantum_ms=1024.0))
        aggregator = obs_mod.AggregatingSink(
            window_ms=1024.0, total_pages=busy_trace.total_pages
        )
        for record in sink.records:
            aggregator.emit(record)
        assert 0 <= aggregator.rows_lo <= busy_trace.total_pages
        assert aggregator.rows_testing == 0  # every test ended
        assert aggregator.tests_outstanding == 0

    def test_no_sink_means_no_event_work(self, busy_trace):
        from repro import obs as obs_mod

        previous = obs_mod.set_sink(None)
        try:
            report = simulate_refresh_reduction(
                busy_trace, MemconConfig(quantum_ms=1024.0)
            )
            assert report.tests_total > 0
        finally:
            obs_mod.set_sink(previous)
