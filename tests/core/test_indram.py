"""Tests for in-DRAM copy acceleration of Copy&Compare."""

import pytest

from repro.core.costmodel import CostModel, TestMode
from repro.core.indram import (
    AcceleratedCostModel,
    CopyMechanism,
    accelerated_test_cost_ns,
    copy_cost_ns,
    min_write_interval_by_mechanism,
)


class TestCopyCosts:
    def test_over_channel_matches_row_write(self):
        assert copy_cost_ns(CopyMechanism.OVER_CHANNEL) == 534.0

    def test_rowclone_much_cheaper(self):
        # 2 * tRAS + tRP = 67 ns vs 534 ns streaming.
        assert copy_cost_ns(CopyMechanism.ROWCLONE) == 67.0

    def test_lisa_slightly_above_rowclone(self):
        assert copy_cost_ns(CopyMechanism.LISA) > copy_cost_ns(
            CopyMechanism.ROWCLONE
        )
        assert copy_cost_ns(CopyMechanism.LISA) < 100.0

    def test_accelerated_total_cost(self):
        assert accelerated_test_cost_ns(
            CopyMechanism.OVER_CHANNEL
        ) == 1602.0
        assert accelerated_test_cost_ns(
            CopyMechanism.ROWCLONE
        ) == 2 * 534.0 + 67.0


class TestAcceleratedModel:
    def test_over_channel_reduces_to_baseline(self):
        model = AcceleratedCostModel(
            copy_mechanism=CopyMechanism.OVER_CHANNEL
        )
        baseline = CostModel()
        for t_ms in (0.0, 100.0, 900.0):
            assert model.memcon_cost_ns(
                t_ms, TestMode.COPY_AND_COMPARE
            ) == baseline.memcon_cost_ns(t_ms, TestMode.COPY_AND_COMPARE)

    def test_read_and_compare_unaffected(self):
        model = AcceleratedCostModel(copy_mechanism=CopyMechanism.ROWCLONE)
        baseline = CostModel()
        assert model.memcon_cost_ns(
            500.0, TestMode.READ_AND_COMPARE
        ) == baseline.memcon_cost_ns(500.0, TestMode.READ_AND_COMPARE)

    def test_rowclone_shrinks_min_write_interval(self):
        intervals = min_write_interval_by_mechanism()
        assert intervals[CopyMechanism.OVER_CHANNEL] == 864.0
        assert intervals[CopyMechanism.ROWCLONE] < 864.0
        assert intervals[CopyMechanism.LISA] < 864.0

    def test_rowclone_approaches_read_and_compare(self):
        """With a near-free copy, Copy&Compare's crossover nears
        Read&Compare's 560 ms plus the small extra activation cost."""
        intervals = min_write_interval_by_mechanism()
        assert 560.0 <= intervals[CopyMechanism.ROWCLONE] <= 700.0

    def test_mechanism_ordering(self):
        intervals = min_write_interval_by_mechanism()
        assert (intervals[CopyMechanism.ROWCLONE]
                <= intervals[CopyMechanism.LISA]
                <= intervals[CopyMechanism.OVER_CHANNEL])
