"""Validation and report-API tests for MEMCON configuration."""

import pytest

from repro.core.costmodel import TestMode
from repro.core.memcon import (
    MemconConfig,
    MemconReport,
    simulate_refresh_reduction,
)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"quantum_ms": 0.0},
        {"hi_ref_interval_ms": 0.0},
        {"lo_ref_interval_ms": 8.0},   # below HI-REF
        {"test_duration_ms": 0.0},
    ])
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            MemconConfig(**kwargs)

    def test_defaults_match_paper(self):
        config = MemconConfig()
        assert config.hi_ref_interval_ms == 16.0
        assert config.lo_ref_interval_ms == 64.0
        assert config.test_mode is TestMode.READ_AND_COMPARE
        assert config.long_interval_ms == 1024.0


class TestReportApi:
    def _report(self, trace_factory, **config_kwargs):
        trace = trace_factory({0: [100.0]}, duration_ms=10_000.0,
                              total_pages=4)
        return simulate_refresh_reduction(
            trace, MemconConfig(**config_kwargs),
        )

    def test_upper_bound_follows_intervals(self, trace_factory):
        report = self._report(trace_factory, hi_ref_interval_ms=16.0,
                              lo_ref_interval_ms=128.0)
        assert report.upper_bound_reduction == pytest.approx(0.875)

    def test_zero_baseline_guard(self):
        report = MemconReport(
            workload="x", config=MemconConfig(), window_ms=1.0,
            total_pages=1, refresh_count=0.0, baseline_refresh_count=0.0,
            lo_ref_time_fraction=0.0, tests_total=0, tests_failed=0,
            tests_correct=0, tests_mispredicted=0, refresh_time_ns=0.0,
            baseline_refresh_time_ns=0.0, testing_time_ns=0.0,
            testing_time_correct_ns=0.0, testing_time_mispredicted_ns=0.0,
        )
        assert report.refresh_reduction == 0.0
        assert report.testing_time_vs_baseline_refresh == 0.0

    def test_copy_mode_costs_more_testing_time(self, trace_factory):
        read = self._report(trace_factory,
                            test_mode=TestMode.READ_AND_COMPARE)
        copy = self._report(trace_factory,
                            test_mode=TestMode.COPY_AND_COMPARE)
        assert copy.testing_time_ns > read.testing_time_ns
        assert copy.tests_total == read.tests_total

    def test_disabling_read_only_tests(self, trace_factory):
        trace = trace_factory({0: [100.0]}, duration_ms=10_000.0,
                              total_pages=8)
        with_ro = simulate_refresh_reduction(
            trace, MemconConfig(test_read_only_pages=True),
        )
        without_ro = simulate_refresh_reduction(
            trace, MemconConfig(test_read_only_pages=False),
        )
        assert with_ro.tests_total == without_ro.tests_total + 7
        assert with_ro.refresh_reduction > without_ro.refresh_reduction
