"""Tests for the cost-benefit model (Figure 6 / Appendix arithmetic)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costmodel import CostModel
from repro.core.costmodel import TestMode as Mode
from repro.core.costmodel import (
    copy_and_compare_storage_overhead,
    test_cost_ns as cost_of_test,
)


class TestTestCosts:
    def test_read_and_compare(self):
        assert cost_of_test(Mode.READ_AND_COMPARE) == 1068.0

    def test_copy_and_compare(self):
        assert cost_of_test(Mode.COPY_AND_COMPARE) == 1602.0


class TestMinWriteInterval:
    """The paper's four published crossovers must reproduce exactly."""

    @pytest.mark.parametrize("lo_ms,mode,expected", [
        (64.0, Mode.READ_AND_COMPARE, 560.0),
        (64.0, Mode.COPY_AND_COMPARE, 864.0),
        (128.0, Mode.READ_AND_COMPARE, 480.0),
        (256.0, Mode.READ_AND_COMPARE, 448.0),
    ])
    def test_paper_crossovers(self, lo_ms, mode, expected):
        model = CostModel(lo_ref_interval_ms=lo_ms)
        assert model.min_write_interval_ms(mode) == expected

    def test_copy_mode_needs_longer_interval(self):
        model = CostModel()
        assert model.min_write_interval_ms(
            Mode.COPY_AND_COMPARE
        ) > model.min_write_interval_ms(Mode.READ_AND_COMPARE)

    def test_within_paper_band(self):
        # "between 448 and 864 ms depending on test mode and refresh rate"
        for lo_ms in (64.0, 128.0, 256.0):
            for mode in Mode:
                value = CostModel(
                    lo_ref_interval_ms=lo_ms
                ).min_write_interval_ms(mode)
                assert 448.0 <= value <= 864.0


class TestCostCurves:
    def test_hi_ref_steps_on_grid(self):
        model = CostModel()
        assert model.hi_ref_cost_ns(15.9) == 0.0
        assert model.hi_ref_cost_ns(16.0) == 39.0
        assert model.hi_ref_cost_ns(64.0) == 4 * 39.0

    def test_memcon_starts_at_test_cost(self):
        model = CostModel()
        assert model.memcon_cost_ns(
            0.0, Mode.READ_AND_COMPARE
        ) == 1068.0

    def test_memcon_first_refresh_after_test_window(self):
        model = CostModel()
        # The test itself covers the first 64 ms; the first LO-REF refresh
        # lands one interval later.
        assert model.memcon_cost_ns(64.0, Mode.READ_AND_COMPARE) == 1068.0
        assert model.memcon_cost_ns(
            128.0, Mode.READ_AND_COMPARE
        ) == 1068.0 + 39.0

    def test_curves_cross_exactly_at_min_interval(self):
        model = CostModel()
        crossover = model.min_write_interval_ms(Mode.READ_AND_COMPARE)
        before = crossover - 16.0
        assert model.hi_ref_cost_ns(before) < model.memcon_cost_ns(
            before, Mode.READ_AND_COMPARE
        )
        assert model.hi_ref_cost_ns(crossover) >= model.memcon_cost_ns(
            crossover, Mode.READ_AND_COMPARE
        )

    def test_cost_curves_shape(self):
        model = CostModel()
        times, hi, mem = model.cost_curves(
            Mode.READ_AND_COMPARE, horizon_ms=1000.0
        )
        assert len(times) == len(hi) == len(mem)
        assert hi == sorted(hi)
        assert mem == sorted(mem)

    @given(st.floats(min_value=0.0, max_value=5000.0))
    @settings(max_examples=50, deadline=None)
    def test_monotonicity_property(self, t_ms):
        model = CostModel()
        assert model.hi_ref_cost_ns(t_ms) <= model.hi_ref_cost_ns(t_ms + 16.0)
        assert model.memcon_cost_ns(
            t_ms, Mode.READ_AND_COMPARE
        ) <= model.memcon_cost_ns(t_ms + 64.0, Mode.READ_AND_COMPARE)


class TestRefreshSavings:
    def test_negative_below_crossover(self):
        model = CostModel()
        assert model.refresh_savings_ns(100.0, Mode.READ_AND_COMPARE) < 0

    def test_positive_above_crossover(self):
        model = CostModel()
        assert model.refresh_savings_ns(
            2000.0, Mode.READ_AND_COMPARE
        ) > 0

    def test_grows_with_interval(self):
        model = CostModel()
        assert model.refresh_savings_ns(
            4000.0, Mode.READ_AND_COMPARE
        ) > model.refresh_savings_ns(2000.0, Mode.READ_AND_COMPARE)


class TestValidation:
    def test_lo_must_exceed_hi(self):
        with pytest.raises(ValueError, match="LO-REF"):
            CostModel(hi_ref_interval_ms=64.0, lo_ref_interval_ms=32.0)

    def test_negative_time_raises(self):
        with pytest.raises(ValueError):
            CostModel().hi_ref_cost_ns(-1.0)


class TestStorageOverhead:
    def test_paper_value(self):
        # 512 reserved rows/bank in a 2 GB module: 1.56%.
        assert copy_and_compare_storage_overhead() == pytest.approx(0.015625)

    def test_scales_with_reservation(self):
        assert copy_and_compare_storage_overhead(
            reserved_rows_per_bank=1024
        ) == pytest.approx(0.03125)

    def test_over_reservation_raises(self):
        with pytest.raises(ValueError):
            copy_and_compare_storage_overhead(
                reserved_rows_per_bank=40_000
            )
