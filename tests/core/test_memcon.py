"""Tests for the MEMCON controller and the fast accounting model."""

import numpy as np
import pytest

from repro.core.memcon import (
    MemconConfig,
    MemconController,
    simulate_refresh_reduction,
)
from repro.traces.generator import generate_trace
from repro.traces.workloads import WORKLOADS


def _config(**overrides):
    defaults = dict(quantum_ms=1000.0, test_duration_ms=64.0,
                    test_read_only_pages=True)
    defaults.update(overrides)
    return MemconConfig(**defaults)


class TestFastAccounting:
    def test_read_only_pages_go_lo(self, trace_factory):
        trace = trace_factory({}, duration_ms=64_000.0, total_pages=4)
        report = simulate_refresh_reduction(trace, _config())
        # Every page: one 64 ms test then LO-REF for the rest.
        assert report.tests_total == 4
        assert report.lo_ref_time_fraction == pytest.approx(
            (64_000.0 - 64.0) / 64_000.0
        )
        assert report.refresh_reduction == pytest.approx(0.75, abs=0.01)

    def test_single_write_page_predicted_and_tested(self, trace_factory):
        # One write at t=100 in quantum 0; prediction at 2000; test ends
        # 2064; LO until the end of the window.
        trace = trace_factory({0: [100.0]}, duration_ms=10_000.0,
                              total_pages=1)
        report = simulate_refresh_reduction(trace, _config())
        assert report.tests_total == 1
        expected_lo = (10_000.0 - 2064.0) / 10_000.0
        assert report.lo_ref_time_fraction == pytest.approx(expected_lo)

    def test_double_write_in_quantum_never_tested(self, trace_factory):
        trace = trace_factory({0: [100.0, 200.0]}, duration_ms=10_000.0,
                              total_pages=1)
        report = simulate_refresh_reduction(trace, _config())
        assert report.tests_total == 0
        assert report.lo_ref_time_fraction == 0.0

    def test_write_before_prediction_boundary_cancels(self, trace_factory):
        # Write at 100 (quantum 0), rewritten at 1500 (quantum 1): the
        # page is evicted from the previous buffer, no test for the first
        # write. The second write (alone in quantum 1, idle in quantum 2)
        # is predicted at 3000.
        trace = trace_factory({0: [100.0, 1500.0]}, duration_ms=10_000.0,
                              total_pages=1)
        report = simulate_refresh_reduction(trace, _config())
        assert report.tests_total == 1
        expected_lo = (10_000.0 - 3064.0) / 10_000.0
        assert report.lo_ref_time_fraction == pytest.approx(expected_lo)

    def test_failing_page_stays_hi(self, trace_factory):
        trace = trace_factory({0: [100.0]}, duration_ms=10_000.0,
                              total_pages=1)
        report = simulate_refresh_reduction(
            trace, _config(test_read_only_pages=False),
            failing_page_fraction=1.0,
        )
        assert report.tests_failed == report.tests_total == 1
        assert report.lo_ref_time_fraction == 0.0

    def test_misprediction_classified(self, trace_factory):
        # Single write in quantum 0, idle through quantum 1 (predicted at
        # 2000), next write at 2500: remaining interval 500 < 1024 ms.
        trace = trace_factory({0: [100.0, 2500.0, 2600.0]},
                              duration_ms=10_000.0, total_pages=1)
        report = simulate_refresh_reduction(
            trace, _config(test_read_only_pages=False)
        )
        assert report.tests_mispredicted == 1

    def test_upper_bound_and_reduction_relationship(self, trace_factory):
        trace = trace_factory({0: [100.0]}, duration_ms=20_000.0,
                              total_pages=2)
        report = simulate_refresh_reduction(trace, _config())
        assert report.upper_bound_reduction == pytest.approx(0.75)
        assert 0.0 <= report.refresh_reduction <= 0.75

    def test_no_prediction_when_trace_ends_early(self, trace_factory):
        # Prediction boundary (2000) is past the window end: no test.
        trace = trace_factory({0: [100.0]}, duration_ms=1500.0,
                              total_pages=1)
        report = simulate_refresh_reduction(
            trace, _config(test_read_only_pages=False)
        )
        assert report.tests_total == 0

    def test_invalid_failing_fraction_raises(self, trace_factory):
        trace = trace_factory({0: [1.0]})
        with pytest.raises(ValueError):
            simulate_refresh_reduction(trace, _config(),
                                       failing_page_fraction=1.5)


class TestControllerAgreement:
    """The event-driven controller must agree with the fast accounting."""

    @pytest.mark.parametrize("writes,total_pages", [
        ({}, 4),
        ({0: [100.0]}, 2),
        ({0: [100.0, 200.0]}, 2),
        ({0: [100.0, 1500.0]}, 1),
        ({0: [100.0], 1: [50.0, 5000.0], 2: [3000.0]}, 6),
    ])
    def test_matches_fast_path(self, trace_factory, writes, total_pages):
        trace = trace_factory(writes, duration_ms=10_000.0,
                              total_pages=total_pages)
        config = _config()
        fast = simulate_refresh_reduction(trace, config)
        controller = MemconController(total_pages=total_pages, config=config)
        slow = controller.run(trace)
        assert slow.tests_total == fast.tests_total
        assert slow.lo_ref_time_fraction == pytest.approx(
            fast.lo_ref_time_fraction, abs=1e-9
        )
        assert slow.refresh_count == pytest.approx(fast.refresh_count)

    def test_matches_on_generated_trace(self):
        profile = WORKLOADS["BlurMotion"]
        trace = generate_trace(profile, seed=4, duration_ms=8_000.0)
        config = _config()
        fast = simulate_refresh_reduction(trace, config)
        controller = MemconController(
            total_pages=trace.total_pages, config=config
        )
        slow = controller.run(trace)
        assert slow.tests_total == fast.tests_total
        assert slow.refresh_reduction == pytest.approx(
            fast.refresh_reduction, abs=0.01
        )

    def test_failing_pages_agree(self, trace_factory):
        trace = trace_factory({0: [100.0]}, duration_ms=10_000.0,
                              total_pages=4)
        config = _config()
        fast = simulate_refresh_reduction(trace, config,
                                          failing_page_fraction=1.0)
        controller = MemconController(total_pages=4, config=config)
        slow = controller.run(trace, failing_page_fraction=1.0)
        assert slow.tests_failed == fast.tests_failed
        assert slow.lo_ref_time_fraction == pytest.approx(0.0)


class TestControllerBehaviour:
    def test_write_during_test_aborts_to_hi(self, trace_factory):
        # Write at 100, predicted at 2000, test would end 2064, but the
        # next write lands at 2030 — inside the test window, so the first
        # test never yields LO-REF. The second write (alone in quantum 2,
        # idle in quantum 3) is then predicted at 4000 and tested.
        trace = trace_factory({0: [100.0, 2030.0]}, duration_ms=10_000.0,
                              total_pages=1)
        controller = MemconController(total_pages=1, config=_config(
            test_read_only_pages=False,
        ))
        report = controller.run(trace)
        assert report.tests_total == 2
        assert report.lo_ref_time_fraction == pytest.approx(
            (10_000.0 - 4064.0) / 10_000.0
        )

    def test_buffer_capacity_limits_tests(self, trace_factory):
        writes = {page: [float(page + 1)] for page in range(8)}
        trace = trace_factory(writes, duration_ms=10_000.0, total_pages=8)
        unlimited = MemconController(
            total_pages=8, config=_config(test_read_only_pages=False),
        ).run(trace)
        limited = MemconController(
            total_pages=8, config=_config(test_read_only_pages=False),
            buffer_capacity=2,
        ).run(trace)
        assert unlimited.tests_total == 8
        assert limited.tests_total == 2

    def test_footprint_mismatch_raises(self, trace_factory):
        trace = trace_factory({0: [1.0]}, total_pages=4)
        controller = MemconController(total_pages=8)
        with pytest.raises(ValueError, match="footprint"):
            controller.run(trace)

    def test_report_metadata(self, trace_factory):
        trace = trace_factory({0: [1.0]}, total_pages=4, name="wl")
        report = MemconController(total_pages=4, config=_config()).run(trace)
        assert report.workload == "wl"
        assert report.total_pages == 4
        assert report.window_ms == trace.duration_ms
