"""Tests for the Read&Compare / Copy&Compare row-test engines."""

import numpy as np
import pytest

from repro.core.costmodel import TestMode as Mode
from repro.core.testing import (
    ReservedRegion,
    RowTestEngine,
    make_reserved_region,
)


@pytest.fixture
def engine(dense_fault_device):
    return RowTestEngine(dense_fault_device, mode=Mode.READ_AND_COMPARE,
                         test_interval_ms=2000.0)


@pytest.fixture
def copy_engine(dense_fault_device):
    region = ReservedRegion(rows=[60, 61, 62, 63])
    return RowTestEngine(
        dense_fault_device, mode=Mode.COPY_AND_COMPARE,
        test_interval_ms=2000.0, reserved_region=region,
    )


def _fill_random(device, rows, seed=0):
    rng = np.random.default_rng(seed)
    size = device.geometry.row_size_bytes
    for row in rows:
        device.write_row(row, rng.integers(0, 256, size,
                                           dtype=np.uint8).tobytes(), 0.0)


class TestReservedRegion:
    def test_acquire_release_cycle(self):
        region = ReservedRegion(rows=[10, 11])
        parking = region.acquire(3)
        assert parking in (10, 11)
        assert region.redirect(3) == parking
        assert region.available == 1
        region.release(3)
        assert region.available == 2
        assert region.redirect(3) is None

    def test_exhaustion_raises(self):
        region = ReservedRegion(rows=[10])
        region.acquire(1)
        with pytest.raises(RuntimeError, match="exhausted"):
            region.acquire(2)

    def test_double_acquire_raises(self):
        region = ReservedRegion(rows=[10, 11])
        region.acquire(1)
        with pytest.raises(ValueError, match="already parked"):
            region.acquire(1)

    def test_release_unparked_raises(self):
        region = ReservedRegion(rows=[10])
        with pytest.raises(ValueError, match="not parked"):
            region.release(5)

    def test_make_reserved_region_paper_sizing(self):
        region = make_reserved_region(
            rows_per_bank=32768, banks=8, reserved_per_bank=512,
        )
        assert region.capacity == 4096

    def test_duplicate_rows_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            ReservedRegion(rows=[1, 1])


class TestReadAndCompare:
    def test_zero_content_passes(self, engine):
        result = engine.run_test(0, now_ms=0.0)
        # All-zero rows hold no worst-case charge patterns; with true-cell
        # rows this is guaranteed, anti-cell rows may rarely fail.
        assert result.mode is Mode.READ_AND_COMPARE
        assert result.extra_reads == 2
        assert result.latency_cost_ns == 1068.0

    def test_detects_content_failures(self, engine):
        device = engine.device
        _fill_random(device, range(device.geometry.total_rows))
        results = [
            engine.run_test(row, now_ms=0.0)
            for row in range(device.geometry.total_rows)
        ]
        failed = [r for r in results if not r.passed]
        assert failed, "dense fault population must trip some rows"
        assert all(r.flipped_bits > 0 for r in failed)

    def test_failing_row_restored(self, engine):
        device = engine.device
        _fill_random(device, range(device.geometry.total_rows), seed=1)
        snapshot = {
            row: device.cells.read_row_bytes(row)
            for row in range(device.geometry.total_rows)
        }
        for row in range(device.geometry.total_rows):
            result = engine.run_test(row, now_ms=0.0)
            if not result.passed:
                # The buffered copy repaired the row.
                assert device.cells.read_row_bytes(row) == snapshot[row]

    def test_stats_counted(self, engine):
        _fill_random(engine.device, range(8))
        for row in range(8):
            engine.run_test(row, now_ms=0.0)
        assert engine.tests_run == 8
        assert 0 <= engine.tests_failed <= 8

    def test_result_window(self, engine):
        result = engine.run_test(0, now_ms=100.0)
        assert result.started_ms == 100.0
        assert result.finished_ms == 2100.0


class TestCopyAndCompare:
    def test_cost_and_traffic(self, copy_engine):
        result = copy_engine.run_test(0, now_ms=0.0)
        assert result.latency_cost_ns == 1602.0
        assert result.extra_writes >= 1

    def test_detects_failures_via_digest(self, copy_engine):
        device = copy_engine.device
        _fill_random(device, range(32), seed=2)
        results = [
            copy_engine.run_test(row, now_ms=0.0) for row in range(32)
        ]
        # The dense fault population must trip some rows, caught purely
        # by the ECC digest mismatch.
        assert any(not r.passed for r in results)
        assert copy_engine.tests_failed == sum(
            1 for r in results if not r.passed
        )

    def test_failing_row_restored_from_parking(self, copy_engine):
        device = copy_engine.device
        _fill_random(device, range(32), seed=3)
        snapshot = {
            row: device.cells.read_row_bytes(row) for row in range(32)
        }
        for row in range(32):
            result = copy_engine.run_test(row, now_ms=0.0)
            if not result.passed:
                assert device.cells.read_row_bytes(row) == snapshot[row]

    def test_parking_slots_recycled(self, copy_engine):
        for row in range(16):
            copy_engine.run_test(row, now_ms=0.0)
        assert copy_engine.reserved.available == copy_engine.reserved.capacity

    def test_requires_reserved_region(self, dense_fault_device):
        with pytest.raises(ValueError, match="reserved region"):
            RowTestEngine(dense_fault_device, mode=Mode.COPY_AND_COMPARE)


class TestValidation:
    def test_invalid_interval_raises(self, dense_fault_device):
        with pytest.raises(ValueError):
            RowTestEngine(dense_fault_device, test_interval_ms=0.0)

    def test_make_region_validation(self):
        with pytest.raises(ValueError):
            make_reserved_region(rows_per_bank=10, banks=2,
                                 reserved_per_bank=11)
