"""Tests for the PRIL predictor (Figure 13 workflow)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pril import PrilPredictor


class TestFigure13Workflow:
    """Each numbered step of the paper's workflow diagram."""

    def test_step1_first_write_enters_buffer(self):
        pril = PrilPredictor()
        pril.observe_write(7)
        assert pril.current_buffer_size == 1
        assert pril.stats.first_writes == 1

    def test_step2_repeat_write_removed_from_buffer(self):
        pril = PrilPredictor()
        pril.observe_write(7)
        pril.observe_write(7)
        assert pril.current_buffer_size == 0
        assert pril.stats.repeat_write_drops == 1

    def test_step3_write_evicts_from_previous_buffer(self):
        pril = PrilPredictor()
        pril.observe_write(7)
        pril.end_quantum()          # 7 moves to the previous buffer
        pril.observe_write(7)       # written again -> interval < quantum
        assert pril.previous_buffer_size == 0
        assert pril.stats.cross_quantum_drops == 1
        assert pril.end_quantum() == []

    def test_step4_idle_page_predicted(self):
        pril = PrilPredictor()
        pril.observe_write(7)
        assert pril.end_quantum() == []       # candidate for next quantum
        assert pril.end_quantum() == [7]      # idle one full quantum

    def test_step5_buffers_swap_and_clear(self):
        pril = PrilPredictor()
        pril.observe_write(1)
        pril.end_quantum()
        pril.observe_write(2)
        predicted = pril.end_quantum()
        assert predicted == [1]
        # Page 2 is now in the previous buffer; a fresh quantum begins.
        assert pril.current_buffer_size == 0
        assert pril.previous_buffer_size == 1
        assert pril.end_quantum() == [2]

    def test_page_written_twice_never_predicted(self):
        pril = PrilPredictor()
        pril.observe_write(3)
        pril.observe_write(3)
        pril.end_quantum()
        assert pril.end_quantum() == []

    def test_third_write_same_quantum_stays_dropped(self):
        pril = PrilPredictor()
        for _ in range(3):
            pril.observe_write(3)
        pril.end_quantum()
        assert pril.end_quantum() == []

    def test_multiple_pages_predicted_sorted(self):
        pril = PrilPredictor()
        for page in (9, 2, 5):
            pril.observe_write(page)
        pril.end_quantum()
        assert pril.end_quantum() == [2, 5, 9]

    def test_prediction_consumed_once(self):
        pril = PrilPredictor()
        pril.observe_write(1)
        pril.end_quantum()
        assert pril.end_quantum() == [1]
        assert pril.end_quantum() == []


class TestBufferCapacity:
    def test_overflow_discards_new_page(self):
        pril = PrilPredictor(buffer_capacity=2)
        for page in (1, 2, 3):
            pril.observe_write(page)
        assert pril.current_buffer_size == 2
        assert pril.stats.buffer_overflow_drops == 1

    def test_discarded_page_never_predicted(self):
        pril = PrilPredictor(buffer_capacity=1)
        pril.observe_write(1)
        pril.observe_write(2)   # discarded
        pril.end_quantum()
        assert pril.end_quantum() == [1]

    def test_capacity_frees_after_repeat_write(self):
        pril = PrilPredictor(buffer_capacity=1)
        pril.observe_write(1)
        pril.observe_write(1)   # drops 1 from the buffer, freeing a slot
        pril.observe_write(2)
        assert pril.current_buffer_size == 1
        pril.end_quantum()
        assert pril.end_quantum() == [2]


class TestBookkeeping:
    def test_quantum_counter(self):
        pril = PrilPredictor()
        assert pril.quantum_index == 0
        pril.end_quantum()
        pril.end_quantum()
        assert pril.quantum_index == 2

    def test_stats_accumulate(self):
        pril = PrilPredictor()
        pril.observe_write(1)
        pril.observe_write(1)
        pril.observe_write(2)
        assert pril.stats.writes_observed == 3
        assert pril.stats.first_writes == 2
        assert pril.stats.repeat_write_drops == 1

    def test_reset_clears_everything(self):
        pril = PrilPredictor()
        pril.observe_write(1)
        pril.end_quantum()
        pril.reset()
        assert pril.quantum_index == 0
        assert pril.previous_buffer_size == 0
        assert pril.stats.writes_observed == 0
        assert pril.end_quantum() == []

    def test_negative_page_raises(self):
        with pytest.raises(ValueError):
            PrilPredictor().observe_write(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PrilPredictor(quantum_ms=0.0)
        with pytest.raises(ValueError):
            PrilPredictor(buffer_capacity=0)


class TestStorageOverhead:
    def test_matches_paper_sizing(self):
        # 8 GB / 8 KB pages = 1 Mi pages -> two 128 KB write-maps; two
        # 4000-entry buffers at 34-bit addresses ~= 34 KB.
        pril = PrilPredictor(buffer_capacity=4000)
        overhead = pril.storage_overhead_bytes(total_pages=1024 * 1024)
        assert overhead == 2 * 128 * 1024 + 2 * 4000 * 34 // 8

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            PrilPredictor().storage_overhead_bytes(0)


class TestPredictionInvariants:
    @given(st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 9)),  # (quantum, page)
        min_size=1, max_size=60,
    ))
    @settings(max_examples=60, deadline=None)
    def test_predicted_pages_written_exactly_once_then_idle(self, events):
        """Property: a page predicted at the end of quantum q+1 was written
        exactly once in quantum q and not at all in quantum q+1."""
        events.sort(key=lambda e: e[0])
        max_quantum = max(q for q, _ in events)
        pril = PrilPredictor()
        writes_by_quantum = {}
        predictions = {}
        current = 0
        for quantum, page in events:
            while current < quantum:
                predictions[current] = pril.end_quantum()
                current += 1
            pril.observe_write(page)
            writes_by_quantum.setdefault(quantum, []).append(page)
        for _ in range(2):
            predictions[current] = pril.end_quantum()
            current += 1
        for boundary, pages in predictions.items():
            for page in pages:
                prev_writes = writes_by_quantum.get(boundary - 1, [])
                this_writes = writes_by_quantum.get(boundary, [])
                assert prev_writes.count(page) == 1
                assert page not in this_writes
